//! The telepresence session runner.
//!
//! Builds the full measured system end-to-end on the simulated network:
//!
//! ```text
//! sensors → semantic/video encoder → packetizer → QUIC/RTP framing
//!   → client ──WiFi── AP ──WAN── SFU server ──WAN── AP ──WiFi── client
//!   → reassembly → decode → visibility pipeline → frame-cost model
//! ```
//!
//! with Wireshark-style taps at every AP, per-second receiver feedback
//! (in-band RTCP receiver reports for 2D sessions) driving rate
//! adaptation, the receiver-side persona availability state machine for
//! spatial sessions (faithful to the paper: the semantic sender has no
//! feedback loop to close — "poor connection" is a receiver UI state),
//! Opus-class audio alongside every video/persona stream, and `tc`-style
//! impairments attachable to any participant's uplink.

use crate::adaptation::{
    CongestionController, CongestionSignals, DegradationLadder, PersonaAvailability, PersonaMode,
    PersonaState, RateController, ReceiverReport,
};
use crate::encoder::{VideoEncoder, VideoEncoderConfig};
use crate::profile::{AppProfile, PersonaType, Topology};
use crate::scene::{GazeDynamics, SeatingLayout};
use crate::server::{
    failover_site, resilience_metrics, AdmissionVerdict, AssignmentPolicy, ReconnectPhase,
    Reconnector, ResilienceConfig, ServerAssignment, SiteDirectory,
};
use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;
use visionsim_core::metrics::{self, Class};
use visionsim_core::sanitizer;
use visionsim_core::rng::SimRng;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::trace::{self, TraceKind};
use visionsim_core::units::DataRate;
use visionsim_device::device::{Device, DeviceKind};
use visionsim_geo::cities::City;
use visionsim_geo::geodb::{GeoDb, NetAddr};
use visionsim_geo::propagation::LatencyModel;
use visionsim_geo::sites::{Provider, SiteRegistry};
use visionsim_net::fault::{apply_to_netem, FaultEvent, FaultKind, FaultPlan};
use visionsim_net::link::{LinkConfig, LinkId};
use visionsim_net::netem::Netem;
use visionsim_net::network::{Network, NodeId};
use visionsim_net::packet::PortPair;
use visionsim_net::tap::{TapId, TapRecord};
use visionsim_render::cost::CostModel;
use visionsim_render::counters::SessionCounters;
use visionsim_render::visibility::{PersonaInstance, VisibilityFlags, VisibilityPipeline};
use visionsim_semantic::codec::{SemanticCodec, SemanticConfig};
use visionsim_semantic::packetize::{Fragment, FrameAssembler, Packetizer};
use visionsim_sensor::capture::RgbdCapture;
use visionsim_sensor::motion::MotionConfig;
use visionsim_transport::cipher;
use visionsim_transport::quic::QuicStreamSender;
use visionsim_transport::rtp::RtpStream;

/// Cached handles into the metrics registry for the session layer. All
/// [`Class::Sim`]: derived purely from seeded simulation state.
struct VcaMetrics {
    pli_sent: metrics::Counter,
    keyframes_forced: metrics::Counter,
    mode_switches: metrics::Counter,
    failovers: metrics::Counter,
    fault_onsets: metrics::Counter,
    fault_recoveries: metrics::Counter,
}

fn vca_metrics() -> &'static VcaMetrics {
    static M: OnceLock<VcaMetrics> = OnceLock::new();
    M.get_or_init(|| VcaMetrics {
        pli_sent: metrics::counter("vca/pli_sent", Class::Sim),
        keyframes_forced: metrics::counter("vca/keyframes_forced", Class::Sim),
        mode_switches: metrics::counter("vca/mode_switches", Class::Sim),
        failovers: metrics::counter("vca/failovers", Class::Sim),
        fault_onsets: metrics::counter("vca/fault_onsets", Class::Sim),
        fault_recoveries: metrics::counter("vca/fault_recoveries", Class::Sim),
    })
}

/// One participant's specification.
#[derive(Clone, Debug)]
pub struct ParticipantSpec {
    /// Display name ("U1").
    pub name: String,
    /// Device kind.
    pub device: DeviceKind,
    /// Where the participant is.
    pub city: City,
}

/// Session configuration.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Which application.
    pub provider: Provider,
    /// Participants; index 0 initiates the session.
    pub participants: Vec<ParticipantSpec>,
    /// Session length.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Server assignment policy.
    pub policy: AssignmentPolicy,
    /// Uplink shaping, per participant: (participant index, rate) —
    /// `tc tbf` on each listed uplink. Any subset of participants may be
    /// shaped in the same session.
    pub uplink_limits: Vec<(usize, DataRate)>,
    /// Optional time-varying uplink shaping: (participant index, profile)
    /// — trace playback of a fluctuating access network.
    pub uplink_profile: Option<(usize, visionsim_net::netem::RateProfile)>,
    /// Optional extra one-way delay on a participant's uplink — `tc netem`.
    pub extra_delay: Option<(usize, SimDuration)>,
    /// Seating layout for spatial rendering.
    pub layout: SeatingLayout,
    /// Visibility optimizations active on the headsets.
    pub visibility: VisibilityFlags,
    /// Chaos schedules, per participant: (participant index, plan). Netem
    /// events mutate that participant's access link as virtual time
    /// advances; `ServerDown` events take out the SFU site the participant
    /// is attached to (the session then fails over).
    pub fault_plans: Vec<(usize, FaultPlan)>,
    /// Close the congestion loop: receivers send RTCP XR reports
    /// (jitter + arrival rate) alongside their RRs, every sender runs a
    /// delay+loss [`CongestionController`], spatial senders pace to its
    /// target, and the degradation ladder folds sustained congestion into
    /// its spatial→2D decision. Shaped uplinks get a finite-queue token
    /// bucket (real drops) instead of the open-loop netem rate limit.
    pub congestion_control: bool,
    /// Control-plane resilience: site capacity + admission control, a
    /// probe-driven health view with per-site circuit breakers, and a
    /// per-participant reconnect state machine (capped exponential
    /// backoff with seeded jitter, rejoin budget). `None` keeps the
    /// legacy single next-nearest reattach, byte-identical to before.
    pub resilience: Option<ResilienceConfig>,
}

impl SessionConfig {
    /// A two-party session between `a_city` and `b_city` on `provider`,
    /// with the given device kinds. The first participant initiates.
    pub fn two_party(
        provider: Provider,
        a: (DeviceKind, City),
        b: (DeviceKind, City),
        seed: u64,
    ) -> Self {
        SessionConfig {
            provider,
            participants: vec![
                ParticipantSpec {
                    name: "U1".into(),
                    device: a.0,
                    city: a.1,
                },
                ParticipantSpec {
                    name: "U2".into(),
                    device: b.0,
                    city: b.1,
                },
            ],
            duration: SimDuration::from_secs(30),
            seed,
            policy: AssignmentPolicy::NearestToInitiator,
            uplink_limits: Vec::new(),
            uplink_profile: None,
            extra_delay: None,
            layout: SeatingLayout::Arc,
            visibility: VisibilityFlags::vision_pro(),
            fault_plans: Vec::new(),
            congestion_control: false,
            resilience: None,
        }
    }

    /// An all-Vision-Pro FaceTime session with `n` users in the given
    /// cities (cycled if fewer cities than users).
    pub fn facetime_avp(n: usize, cities: &[City], seed: u64) -> Self {
        assert!(n >= 2, "a session needs at least two users");
        let participants = (0..n)
            .map(|i| ParticipantSpec {
                name: format!("U{}", i + 1),
                device: DeviceKind::VisionPro,
                city: cities[i % cities.len()],
            })
            .collect();
        SessionConfig {
            provider: Provider::FaceTime,
            participants,
            duration: SimDuration::from_secs(30),
            seed,
            policy: AssignmentPolicy::NearestToInitiator,
            uplink_limits: Vec::new(),
            uplink_profile: None,
            extra_delay: None,
            layout: SeatingLayout::Arc,
            visibility: VisibilityFlags::vision_pro(),
            fault_plans: Vec::new(),
            congestion_control: false,
            resilience: None,
        }
    }
}

/// What a finished session exposes to the measurement tooling.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The persona type the session delivered.
    pub persona_type: PersonaType,
    /// The media topology used.
    pub topology: Topology,
    /// Server assignment (None for P2P).
    pub assignment: Option<ServerAssignment>,
    /// AP tap captures, per participant.
    pub taps: Vec<Vec<TapRecord>>,
    /// Client addresses, per participant (the capture "subject").
    pub client_addrs: Vec<NetAddr>,
    /// Render counters per participant (populated for Vision Pro receivers
    /// in spatial sessions).
    pub counters: Vec<SessionCounters>,
    /// Persona availability timeline per participant (receiver side).
    pub availability: Vec<Vec<(SimTime, PersonaState)>>,
    /// Encoded semantic frame sizes observed at senders (spatial only).
    pub semantic_frame_sizes: Vec<usize>,
    /// End-to-end semantic-frame latency samples per receiving
    /// participant, milliseconds: capture tick → frame fully reassembled
    /// (spatial sessions only). Motion-to-photon adds up to one display
    /// frame plus the ~12 ms passthrough pipeline on top.
    pub e2e_latency_ms: Vec<visionsim_core::stats::Percentiles>,
    /// The geolocation database covering every node in the session.
    pub geodb: GeoDb,
    /// Final encoder quality per participant (2D only; 1.0 otherwise).
    pub final_quality: Vec<f64>,
    /// Rendering-mode timeline per participant (spatial sessions): the
    /// graceful-degradation ladder's decisions at each feedback interval.
    pub mode_log: Vec<Vec<(SimTime, PersonaMode)>>,
    /// Spatial→2D fallback transitions per participant.
    pub fallbacks: Vec<u32>,
    /// Encoder quality per feedback interval per participant (2D only).
    pub quality_log: Vec<Vec<(SimTime, f64)>>,
    /// SFU failovers that happened: (completion time, new site label).
    pub failovers: Vec<(SimTime, String)>,
    /// PLI keyframe requests sent per participant (as receiver).
    pub pli_sent: Vec<u64>,
    /// Keyframes forced by incoming PLIs per participant (as sender).
    pub keyframes_forced: Vec<u64>,
    /// Reconnect episodes (resilience sessions only; empty otherwise).
    /// A participant appears once per outage that hit their site.
    pub reconnects: Vec<ReconnectSummary>,
    /// Admissions refused fleet-wide (resilience sessions only).
    pub admission_rejects: u64,
}

/// One participant's reconnect episode, summarized for the tooling.
#[derive(Clone, Debug)]
pub struct ReconnectSummary {
    /// Which participant.
    pub participant: usize,
    /// Attempts fired.
    pub attempts: u32,
    /// Attempts refused (admission reject or no live candidate).
    pub rejected: u32,
    /// Where the machine ended: reattached, abandoned, or still waiting
    /// when the session closed.
    pub phase: ReconnectPhase,
    /// Site death → reattached, when the episode completed.
    pub rejoin: Option<SimDuration>,
}

impl SessionOutcome {
    /// Fraction of the session each participant's incoming personas were
    /// available.
    pub fn availability_fraction(&self, participant: usize) -> f64 {
        let timeline = &self.availability[participant];
        if timeline.is_empty() {
            return 1.0;
        }
        let up = timeline
            .iter()
            .filter(|(_, s)| *s == PersonaState::Available)
            .count();
        up as f64 / timeline.len() as f64
    }

    /// Fraction of the session a participant rendered the full spatial
    /// persona (1.0 when the mode log is empty — 2D sessions have no
    /// ladder).
    pub fn spatial_fraction(&self, participant: usize) -> f64 {
        let timeline = &self.mode_log[participant];
        if timeline.is_empty() {
            return 1.0;
        }
        let spatial = timeline
            .iter()
            .filter(|(_, m)| *m == PersonaMode::Spatial)
            .count();
        spatial as f64 / timeline.len() as f64
    }
}

/// Per-sender media state.
#[allow(clippy::large_enum_variant)] // one Spatial per participant; boxing buys nothing
enum SenderState {
    Spatial {
        capture: RgbdCapture,
        codec: SemanticCodec,
        packetizer: Packetizer,
        quic: QuicStreamSender,
    },
    Video {
        encoder: VideoEncoder,
        rtp: RtpStream,
        controller: RateController,
    },
}

/// Per-receiver bookkeeping for one remote sender.
struct ReceiverPeer {
    assembler: FrameAssembler,
    codec: SemanticCodec,
    /// RTP loss tracking.
    last_seq: Option<u16>,
    lost: u64,
    received: u64,
    /// Bytes received this feedback interval.
    interval_bytes: u64,
    /// Semantic-frame loss tracking: highest completed frame id, and this
    /// interval's completed/lost counts. Loss is inferred from id gaps —
    /// the way a real receiver tells loss from latency.
    last_frame_id: Option<u64>,
    frames_completed_interval: u64,
    frames_lost_interval: u64,
    abandoned_snapshot: u64,
    /// When the last PLI was sent toward this sender (rate-limits keyframe
    /// requests during a sustained loss burst).
    last_pli_at: Option<SimTime>,
    /// Congestion-signal tracking for XR extended reports: bytes this XR
    /// interval, last packet arrival, and the RFC 3550-style smoothed
    /// interarrival jitter (µs) — the receiver's queue-delay observable.
    xr_bytes: u64,
    last_arrival: Option<SimTime>,
    mean_gap_us: f64,
    jitter_us: f64,
}

impl ReceiverPeer {
    fn new() -> Self {
        ReceiverPeer {
            assembler: FrameAssembler::new(),
            codec: SemanticCodec::new(SemanticConfig::default()),
            last_seq: None,
            lost: 0,
            received: 0,
            interval_bytes: 0,
            last_frame_id: None,
            frames_completed_interval: 0,
            frames_lost_interval: 0,
            abandoned_snapshot: 0,
            last_pli_at: None,
            xr_bytes: 0,
            last_arrival: None,
            mean_gap_us: 0.0,
            jitter_us: 0.0,
        }
    }

    /// Record a media arrival for the congestion observables.
    fn on_arrival(&mut self, at: SimTime, wire_bytes: u64) {
        self.xr_bytes += wire_bytes;
        if let Some(last) = self.last_arrival {
            let gap = at.since(last).as_nanos() as f64 / 1_000.0;
            if self.mean_gap_us == 0.0 {
                self.mean_gap_us = gap;
            }
            let dev = (gap - self.mean_gap_us).abs();
            // RFC 3550 §6.4.1-shaped smoothing (gain 1/16).
            self.jitter_us += (dev - self.jitter_us) / 16.0;
            self.mean_gap_us += (gap - self.mean_gap_us) / 16.0;
        }
        self.last_arrival = Some(at);
    }

    /// This interval's XR payload: (jitter µs, arrival kbps), draining the
    /// byte counter. `interval_s` is the XR cadence.
    fn take_xr(&mut self, interval_s: f64) -> (u32, u32) {
        let kbps = (self.xr_bytes as f64 * 8.0 / 1_000.0 / interval_s).round() as u32;
        self.xr_bytes = 0;
        (self.jitter_us.round() as u32, kbps)
    }

    /// Record a completed semantic frame, inferring losses from id gaps.
    fn on_frame_complete(&mut self, frame_id: u64) {
        if let Some(last) = self.last_frame_id {
            if frame_id > last + 1 {
                self.frames_lost_interval += frame_id - last - 1;
            }
        }
        self.last_frame_id = Some(self.last_frame_id.unwrap_or(0).max(frame_id));
        self.frames_completed_interval += 1;
    }

    /// This interval's completeness, draining the interval counters.
    fn take_interval_completeness(&mut self) -> f64 {
        let abandoned_now = self.assembler.abandoned();
        let abandoned_delta = abandoned_now - self.abandoned_snapshot;
        self.abandoned_snapshot = abandoned_now;
        let complete = self.frames_completed_interval;
        let lost = self.frames_lost_interval + abandoned_delta;
        self.frames_completed_interval = 0;
        self.frames_lost_interval = 0;
        if complete + lost == 0 {
            // Total starvation: nothing even attempted to arrive.
            return 0.0;
        }
        complete as f64 / (complete + lost) as f64
    }
}

/// The session engine.
pub struct SessionRunner {
    config: SessionConfig,
}

const QUIC_PORT: u16 = 443;
const RTP_PORT: u16 = 5_004;
/// RTCP rides on the RTP port + 1, per convention.
const RTCP_PORT: u16 = 5_005;
const MEDIA_PORT_BASE: u16 = 5_000;
const AUDIO_PORT_BASE: u16 = 5_200;
const RTCP_PORT_BASE: u16 = 5_400;
const SESSION_KEY: cipher::Key = [0x5E; 32];

/// Which stream a source port identifies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StreamKind {
    /// The persona/video media stream.
    Media,
    /// The Opus-class audio stream.
    Audio,
    /// RTCP feedback.
    Feedback,
}

/// Decode a source port into (sender index, stream kind).
fn sender_of(src_port: u16, n: usize) -> Option<(usize, StreamKind)> {
    for (base, kind) in [
        (MEDIA_PORT_BASE, StreamKind::Media),
        (AUDIO_PORT_BASE, StreamKind::Audio),
        (RTCP_PORT_BASE, StreamKind::Feedback),
    ] {
        if src_port >= base && ((src_port - base) as usize) < n {
            return Some(((src_port - base) as usize, kind));
        }
    }
    None
}

/// Opus-class audio: one ~88 B frame every other display tick (≈45 pps,
/// ≈32 kbps before encapsulation).
const AUDIO_PAYLOAD: usize = 88;
const AUDIO_EVERY_TICKS: u64 = 2;

/// Uplink rate below which the spatial persona cannot be sustained
/// (paper §4.3: the persona needs ~0.67 Mbps; below ~700 kbps it fails).
/// The congestion loop feeds `target / floor` into the degradation ladder.
const SPATIAL_FLOOR_KBPS: u64 = 700;

impl SessionRunner {
    /// A runner for `config`.
    pub fn new(config: SessionConfig) -> Self {
        assert!(
            config.participants.len() >= 2,
            "a session needs at least two participants"
        );
        SessionRunner { config }
    }

    /// Run the session to completion.
    ///
    /// Batch path: builds a [`SessionSim`] and steps it to the end in a
    /// tight loop. Byte-identical to the pre-stepper monolithic loop —
    /// the setup, per-tick body, and tail run in the same order with the
    /// same RNG draws; only the stack frame boundaries moved.
    pub fn run(self) -> SessionOutcome {
        let mut sim = SessionSim::new(self.config);
        while !sim.done() {
            sim.step_tick();
        }
        sim.finish()
    }
}

/// The session engine as an incremental stepper.
///
/// [`SessionRunner::run`] drives it to completion for the batch path; the
/// live service drives it one [`step_tick`](SessionSim::step_tick) at a
/// time, slaved to a wall clock, injecting faults between ticks via
/// [`inject_fault`](SessionSim::inject_fault). All fields are the former
/// locals of the monolithic run loop; the split into `new`/`step_tick`/
/// `finish` preserves their exact initialization and update order.
pub struct SessionSim {
    config: SessionConfig,
    n: usize,
    persona_type: PersonaType,
    topology: Topology,
    rng: SimRng,
    latency: LatencyModel,
    net: Network,
    clients: Vec<NodeId>,
    aps: Vec<NodeId>,
    tap_ids: Vec<TapId>,
    access_links: Vec<(LinkId, LinkId)>,
    registry: SiteRegistry,
    locations: Vec<visionsim_geo::coords::GeoPoint>,
    site_nodes: HashMap<&'static str, NodeId>,
    backbone_pairs: HashSet<(NodeId, NodeId)>,
    assignment: Option<ServerAssignment>,
    servers: Vec<NodeId>,
    audio_quic: Vec<QuicStreamSender>,
    audio_rtp: Vec<RtpStream>,
    senders: Vec<SenderState>,
    receivers: Vec<HashMap<usize, ReceiverPeer>>,
    persona_positions: Vec<visionsim_mesh::geometry::Vec3>,
    seat_drift: Vec<visionsim_mesh::geometry::Vec3>,
    pipeline: VisibilityPipeline,
    cost_model: CostModel,
    gazes: Vec<GazeDynamics>,
    counters: Vec<SessionCounters>,
    availability: Vec<PersonaAvailability>,
    availability_log: Vec<Vec<(SimTime, PersonaState)>>,
    rx_bytes_since_frame: Vec<usize>,
    semantic_frame_sizes: Vec<usize>,
    frame_sent_at: Vec<Vec<SimTime>>,
    e2e_latency_ms: Vec<visionsim_core::stats::Percentiles>,
    fault_plans: Vec<(usize, FaultPlan)>,
    ladders: Vec<DegradationLadder>,
    mode_log: Vec<Vec<(SimTime, PersonaMode)>>,
    quality_log: Vec<Vec<(SimTime, f64)>>,
    dead_sites: Vec<&'static str>,
    dead_nodes: HashSet<NodeId>,
    pending_failovers: Vec<(SimTime, Vec<usize>)>,
    failovers: Vec<(SimTime, String)>,
    directory: Option<SiteDirectory>,
    reconnectors: Vec<Reconnector>,
    next_probe: SimTime,
    pli_sent: Vec<u64>,
    keyframes_forced: Vec<u64>,
    controllers: Vec<Option<CongestionController>>,
    last_rr_loss: Vec<f64>,
    pace_budget: Vec<f64>,
    tick: SimDuration,
    total_ticks: u64,
    feedback_every: u64,
    t: u64,
}

impl SessionSim {
    /// Build the session world: topology, media state, chaos state, and
    /// the congestion loop — everything up to (but not including) the
    /// first tick.
    pub fn new(config: SessionConfig) -> SessionSim {
        assert!(
            config.participants.len() >= 2,
            "a session needs at least two participants"
        );
        let cfg = &config;
        let n = cfg.participants.len();
        let profile = AppProfile::of(cfg.provider);
        let devices: Vec<Device> = cfg
            .participants
            .iter()
            .map(|p| Device::new(p.device, &p.name))
            .collect();
        let persona_type = profile.persona_type(&devices);
        let topology = profile.topology(&devices);

        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let latency = LatencyModel::default();
        let mut net = Network::new(cfg.seed ^ 0x005E_5510);

        // --- Topology construction -----------------------------------
        let mut clients = Vec::with_capacity(n);
        let mut aps = Vec::with_capacity(n);
        let mut tap_ids: Vec<TapId> = Vec::with_capacity(n);
        // Access link ids per participant (uplink, downlink) — the chaos
        // engine's fault plans mutate these mid-run.
        let mut access_links: Vec<(LinkId, LinkId)> = Vec::with_capacity(n);
        for p in &cfg.participants {
            let client = net.add_node(
                &format!("{} ({})", p.name, p.device),
                "client",
                p.city.location,
            );
            let ap = net.add_node(&format!("{} AP", p.name), "access", p.city.location);
            let (up, down) = net.add_duplex(client, ap, LinkConfig::wifi_access());
            // tc attaches at the client's uplink egress. With the
            // congestion loop closed, the limit is a real token bucket
            // with a finite queue (tc tbf): overload produces drops and
            // queuing delay the receiver can observe and report, instead
            // of the open-loop netem serializer.
            for (idx, rate) in &cfg.uplink_limits {
                if *idx == clients.len() {
                    if cfg.congestion_control {
                        net.set_shaper(
                            up,
                            Some(visionsim_net::shaper::ShaperConfig::new(*rate)),
                        );
                    } else {
                        *net.netem_mut(up) = Netem::with_rate_limit(*rate);
                    }
                }
            }
            if let Some((idx, profile)) = &cfg.uplink_profile {
                if *idx == clients.len() {
                    *net.netem_mut(up) = Netem::with_rate_profile(profile.clone());
                }
            }
            if let Some((idx, delay)) = cfg.extra_delay {
                if idx == clients.len() {
                    net.netem_mut(up).extra_delay = delay;
                }
            }
            tap_ids.push(net.add_tap(ap));
            clients.push(client);
            aps.push(ap);
            access_links.push((up, down));
        }

        // The measured system only has the US fleet; the geo-distributed
        // policy (the paper's proposed fix) brings the worldwide fleet.
        let registry = match cfg.policy {
            AssignmentPolicy::NearestToInitiator => SiteRegistry::us_fleet(),
            AssignmentPolicy::GeoDistributed => SiteRegistry::geo_distributed(cfg.provider),
        };
        let locations: Vec<_> = cfg.participants.iter().map(|p| p.city.location).collect();
        // Site bookkeeping persists past construction: SFU failover adds
        // sites (and backbone links) mid-run.
        let mut site_nodes: HashMap<&'static str, NodeId> = HashMap::new();
        let mut backbone_pairs: HashSet<(NodeId, NodeId)> = HashSet::new();
        let (assignment, servers): (Option<ServerAssignment>, Vec<NodeId>) = match topology {
            Topology::P2P => {
                // Direct AP↔AP core path.
                for i in 0..n {
                    for j in i + 1..n {
                        let d = latency.one_way(&locations[i], &locations[j]);
                        net.add_duplex(aps[i], aps[j], LinkConfig::core(d));
                    }
                }
                (None, vec![])
            }
            Topology::Sfu => {
                let assignment = ServerAssignment::assign_with_salt(
                    cfg.policy,
                    &registry,
                    cfg.provider,
                    &locations,
                    cfg.seed,
                );
                // One node per distinct site; APs link to their attachment.
                for site in assignment.distinct_sites() {
                    let node = net.add_node(
                        &format!("{} {}", site.provider, site.label),
                        &format!("{}", site.provider),
                        site.location(),
                    );
                    site_nodes.insert(site.label, node);
                }
                let mut attach_nodes = Vec::with_capacity(n);
                for (i, site) in assignment.attachments.iter().enumerate() {
                    let node = site_nodes[site.label];
                    let d = latency.one_way(&locations[i], &site.location());
                    net.add_duplex(aps[i], node, LinkConfig::core(d));
                    attach_nodes.push(node);
                }
                // Private backbone between distinct sites (lower stretch).
                let distinct = assignment.distinct_sites();
                for i in 0..distinct.len() {
                    for j in i + 1..distinct.len() {
                        let (a, b) = (
                            site_nodes[distinct[i].label],
                            site_nodes[distinct[j].label],
                        );
                        let d = latency
                            .one_way(&distinct[i].location(), &distinct[j].location())
                            .mul_f64(0.8);
                        net.add_duplex(a, b, LinkConfig::core(d));
                        backbone_pairs.insert((a.min(b), a.max(b)));
                    }
                }
                (Some(assignment), attach_nodes)
            }
        };

        // --- Media state ----------------------------------------------
        // Audio senders: a QUIC stream alongside the persona stream for
        // spatial sessions, an RTP/Opus flow otherwise.
        let audio_quic: Vec<QuicStreamSender> = (0..n)
            .map(|i| QuicStreamSender::new(sender_dcid(i), 1, SESSION_KEY))
            .collect();
        let audio_rtp: Vec<RtpStream> = (0..n)
            .map(|i| RtpStream::new(
                visionsim_transport::rtp::PayloadType::OpusAudio,
                0x1000 + i as u32,
                48_000,
            ))
            .collect();
        let senders: Vec<SenderState> = (0..n)
            .map(|i| match persona_type {
                PersonaType::Spatial => SenderState::Spatial {
                    capture: RgbdCapture::new(MotionConfig::default()),
                    codec: SemanticCodec::new(SemanticConfig::default()),
                    packetizer: Packetizer::new(),
                    quic: QuicStreamSender::new(sender_dcid(i), 0, SESSION_KEY),
                },
                PersonaType::TwoD => {
                    let enc_cfg = VideoEncoderConfig::new(
                        profile.resolution_2d,
                        profile.fps_2d,
                        profile.bits_per_pixel,
                    );
                    let full = enc_cfg.bitrate_at(1.0);
                    SenderState::Video {
                        encoder: VideoEncoder::new(enc_cfg),
                        rtp: RtpStream::video(profile.video_pt, i as u32 + 1),
                        controller: RateController::new(full, DataRate::from_kbps(150)),
                    }
                }
            })
            .collect();

        // receivers[r] maps sender index → peer state.
        let receivers: Vec<HashMap<usize, ReceiverPeer>> = (0..n)
            .map(|r| {
                (0..n)
                    .filter(|&s| s != r)
                    .map(|s| (s, ReceiverPeer::new()))
                    .collect()
            })
            .collect();

        // Rendering state per participant (spatial sessions, AVP devices).
        // Seating with natural irregularity: nobody sits on an exact arc.
        // Radius and azimuth jitter per persona, plus slow in-seat drift
        // during the session — together these give Figure 6(a)'s triangle
        // distributions their spread.
        let persona_positions: Vec<_> = cfg
            .layout
            .positions(n - 1, 1.4)
            .into_iter()
            .map(|p| {
                let scale = rng.jitter(1.0, 0.12) as f32;
                visionsim_mesh::geometry::Vec3::new(
                    p.x * scale + rng.normal(0.0, 0.08) as f32,
                    p.y + rng.normal(0.0, 0.03) as f32,
                    p.z * scale,
                )
            })
            .collect();
        let seat_drift: Vec<visionsim_mesh::geometry::Vec3> =
            vec![visionsim_mesh::geometry::Vec3::ZERO; n - 1];
        let pipeline = VisibilityPipeline::new(cfg.visibility);
        let cost_model = CostModel::default();
        // Gaze targets: the remote personas, plus a shared-content window
        // off to the side attended ~15% of the time (FaceTime sessions
        // share apps/whiteboards; attention regularly leaves every
        // persona, which is what gives foveation its Figure 6 bite even in
        // two-party calls).
        let ambient = visionsim_mesh::geometry::Vec3::new(0.5, -0.8, -1.0);
        let gazes: Vec<GazeDynamics> = (0..n)
            .map(|_| {
                let mut g =
                    GazeDynamics::new(persona_positions.clone()).with_ambient(ambient, 0.15);
                // Attention shifts quicken as the group grows (more people
                // to track in conversation).
                g.mean_dwell_s = if n > 2 { 1.4 } else { 2.0 };
                g
            })
            .collect();
        let counters: Vec<SessionCounters> = (0..n).map(|_| SessionCounters::new()).collect();
        let availability: Vec<PersonaAvailability> =
            (0..n).map(|_| PersonaAvailability::new()).collect();
        let availability_log: Vec<Vec<(SimTime, PersonaState)>> = vec![Vec::new(); n];
        let rx_bytes_since_frame: Vec<usize> = vec![0; n];
        let semantic_frame_sizes: Vec<usize> = Vec::new();
        // Semantic frame ids are assigned sequentially per sender; log the
        // capture instant of each so receivers can measure end-to-end
        // latency on completion.
        let frame_sent_at: Vec<Vec<SimTime>> = vec![Vec::new(); n];
        let e2e_latency_ms: Vec<visionsim_core::stats::Percentiles> =
            (0..n).map(|_| visionsim_core::stats::Percentiles::new()).collect();

        // --- Chaos state ------------------------------------------------
        let fault_plans: Vec<(usize, FaultPlan)> = cfg.fault_plans.clone();
        // Graceful degradation: spatial → 2D fallback per participant.
        let ladders: Vec<DegradationLadder> =
            (0..n).map(|_| DegradationLadder::new()).collect();
        let mode_log: Vec<Vec<(SimTime, PersonaMode)>> = vec![Vec::new(); n];
        let quality_log: Vec<Vec<(SimTime, f64)>> = vec![Vec::new(); n];
        // SFU failover: sites currently dead, nodes to stop forwarding
        // from, and the scheduled reattachments (due time, affected
        // participants). Overlapping ServerDown faults each queue their
        // own cohort — an earlier pending reattach is never overwritten.
        let dead_sites: Vec<&'static str> = Vec::new();
        let dead_nodes: HashSet<NodeId> = HashSet::new();
        let pending_failovers: Vec<(SimTime, Vec<usize>)> = Vec::new();
        let failovers: Vec<(SimTime, String)> = Vec::new();
        // Resilience path: the control-plane directory plus one reconnect
        // state machine per disconnected participant. The directory is
        // seeded with the initial attachments so admission sees real load.
        let directory: Option<SiteDirectory> = cfg.resilience.map(|rc| {
            let mut dir = SiteDirectory::new(&registry, cfg.provider, rc);
            if let Some(a) = &assignment {
                for (p, site) in a.attachments.iter().enumerate() {
                    dir.try_admit(site.label, 0, p as u64, SimTime::ZERO);
                }
            }
            dir
        });
        let reconnectors: Vec<Reconnector> = Vec::new();
        let next_probe = SimTime::ZERO;
        // PLI recovery accounting.
        let pli_sent = vec![0u64; n];
        let keyframes_forced = vec![0u64; n];

        // --- Congestion loop state --------------------------------------
        // One delay+loss controller per sender when the loop is closed.
        // The spatial ceiling sits above the nominal ~0.67 Mbps persona
        // rate so an unconstrained uplink keeps full fidelity; the 2D
        // ceiling is the encoder's own top rung.
        let controllers: Vec<Option<CongestionController>> = (0..n)
            .map(|i| {
                if !cfg.congestion_control {
                    return None;
                }
                let (max, min, start) = match persona_type {
                    PersonaType::Spatial => (
                        DataRate::from_kbps(1_200),
                        DataRate::from_kbps(200),
                        DataRate::from_kbps(800),
                    ),
                    PersonaType::TwoD => {
                        let full = VideoEncoderConfig::new(
                            profile.resolution_2d,
                            profile.fps_2d,
                            profile.bits_per_pixel,
                        )
                        .bitrate_at(1.0);
                        (full, DataRate::from_kbps(150), full)
                    }
                };
                Some(
                    CongestionController::new(i as u64, max, min, DataRate::from_kbps(50))
                        .with_initial(start),
                )
            })
            .collect();
        // Loss fraction from the newest RR, paired with the next XR into
        // one controller signal.
        let last_rr_loss: Vec<f64> = vec![0.0; n];
        // Spatial pacing: a per-sender byte budget refilled at the
        // controller target; capture ticks are skipped while it is spent.
        let pace_budget: Vec<f64> = vec![0.0; n];

        let tick = SimDuration::FRAME_90FPS;
        let total_ticks = cfg.duration.as_nanos() / tick.as_nanos();
        let feedback_every = 90u64; // ~1 s
        SessionSim {
            n,
            persona_type,
            topology,
            rng,
            latency,
            net,
            clients,
            aps,
            tap_ids,
            access_links,
            registry,
            locations,
            site_nodes,
            backbone_pairs,
            assignment,
            servers,
            audio_quic,
            audio_rtp,
            senders,
            receivers,
            persona_positions,
            seat_drift,
            pipeline,
            cost_model,
            gazes,
            counters,
            availability,
            availability_log,
            rx_bytes_since_frame,
            semantic_frame_sizes,
            frame_sent_at,
            e2e_latency_ms,
            fault_plans,
            ladders,
            mode_log,
            quality_log,
            dead_sites,
            dead_nodes,
            pending_failovers,
            failovers,
            directory,
            reconnectors,
            next_probe,
            pli_sent,
            keyframes_forced,
            controllers,
            last_rr_loss,
            pace_budget,
            tick,
            total_ticks,
            feedback_every,
            t: 0,
            config,
        }
    }

    /// Whether every tick has been stepped.
    pub fn done(&self) -> bool {
        self.t >= self.total_ticks
    }

    /// Simulated time at the *next* tick boundary (the time `step_tick`
    /// will advance through).
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.t * self.tick.as_nanos())
    }

    /// Display-tick period (the step quantum).
    pub fn tick_duration(&self) -> SimDuration {
        self.tick
    }

    /// Ticks stepped so far and the configured total.
    pub fn progress(&self) -> (u64, u64) {
        (self.t, self.total_ticks)
    }

    /// Participant count.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Queue a fault plan against `participant`, effective from the next
    /// tick — the live service's `fault` command lands here between
    /// pacing ticks. Events already in the past fire on the next step.
    pub fn inject_fault(&mut self, participant: usize, plan: FaultPlan) {
        assert!(
            participant < self.n,
            "fault target {participant} out of range (session has {} participants)",
            self.n
        );
        self.fault_plans.push((participant, plan));
    }

    /// Advance the session by one display tick (1/90 s of simulated
    /// time). A no-op once [`done`](SessionSim::done) reports true.
    pub fn step_tick(&mut self) {
        if self.t >= self.total_ticks {
            return;
        }
        let SessionSim {
            config,
            n,
            persona_type,
            topology,
            rng,
            latency,
            net,
            clients,
            aps,
            access_links,
            registry,
            locations,
            site_nodes,
            backbone_pairs,
            servers,
            audio_quic,
            audio_rtp,
            senders,
            receivers,
            persona_positions,
            seat_drift,
            pipeline,
            cost_model,
            gazes,
            counters,
            availability,
            availability_log,
            rx_bytes_since_frame,
            semantic_frame_sizes,
            frame_sent_at,
            e2e_latency_ms,
            fault_plans,
            ladders,
            mode_log,
            quality_log,
            dead_sites,
            dead_nodes,
            pending_failovers,
            failovers,
            directory,
            reconnectors,
            next_probe,
            pli_sent,
            keyframes_forced,
            controllers,
            last_rr_loss,
            pace_budget,
            tick,
            feedback_every,
            t,
            ..
        } = self;
        let cfg: &SessionConfig = config;
        // The body below is the former monolithic loop body, verbatim:
        // the scalar copies keep the loop's local names compiling.
        let n = *n;
        let persona_type = *persona_type;
        let topology = *topology;
        let tick = *tick;
        let feedback_every = *feedback_every;
        let t = *t;
        {
            let now = SimTime::from_nanos(t * tick.as_nanos());

            // Chaos engine: apply every fault event due by now.
            for (idx, plan) in fault_plans.iter_mut() {
                let due: Vec<FaultEvent> = plan.due(now).to_vec();
                for ev in due {
                    if ev.kind.is_recovery() {
                        vca_metrics().fault_recoveries.inc();
                    } else {
                        vca_metrics().fault_onsets.inc();
                    }
                    if trace::enabled() {
                        let kind = if ev.kind.is_recovery() {
                            TraceKind::FaultRecovery
                        } else {
                            TraceKind::FaultOnset
                        };
                        trace::record(
                            kind,
                            now.as_nanos(),
                            trace::intern(ev.kind.name()),
                            *idx as u64,
                            0,
                            0,
                        );
                    }
                    let (up, down) = access_links[*idx];
                    match ev.kind {
                        FaultKind::ServerDown { detect, reconnect } => {
                            // Take out the SFU site this participant is
                            // attached to; everyone attached there goes
                            // dark until the reconnect completes.
                            if topology != Topology::Sfu {
                                continue;
                            }
                            let victim = servers[*idx];
                            if dead_nodes.contains(&victim) {
                                continue;
                            }
                            dead_nodes.insert(victim);
                            let victim_label = site_nodes
                                .iter()
                                .find(|(_, &node)| node == victim)
                                .map(|(&label, _)| label);
                            if let Some(label) = victim_label {
                                dead_sites.push(label);
                            }
                            for lid in net.links_of(victim) {
                                net.set_down(lid, true);
                            }
                            let affected: Vec<usize> =
                                (0..n).filter(|&p| servers[p] == victim).collect();
                            match (directory.as_mut(), cfg.resilience.as_ref()) {
                                (Some(dir), Some(rc)) => {
                                    // Resilience path: the directory learns
                                    // the outage (ground truth; probes lag)
                                    // and every stranded participant gets a
                                    // reconnect state machine. The first
                                    // attempt fires after the same
                                    // detect + reconnect lag the legacy
                                    // path waits out.
                                    if let Some(label) = victim_label {
                                        dir.set_site_up(label, false);
                                        for _ in &affected {
                                            dir.detach(label, 0);
                                        }
                                    }
                                    for &p in &affected {
                                        let waiting = reconnectors.iter().any(|r| {
                                            r.participant() == p as u64
                                                && matches!(
                                                    r.phase(),
                                                    ReconnectPhase::Waiting { .. }
                                                )
                                        });
                                        if !waiting {
                                            reconnectors.push(Reconnector::new(
                                                p as u64,
                                                now,
                                                now + detect + reconnect,
                                                rc.backoff,
                                                rc.rejoin_budget,
                                                cfg.seed,
                                            ));
                                        }
                                    }
                                }
                                _ => {
                                    pending_failovers
                                        .push((now + detect + reconnect, affected));
                                }
                            }
                        }
                        // Radio outages cut both directions of the access
                        // link; every other impairment applies at the
                        // uplink egress, where tc attaches.
                        FaultKind::LinkDown | FaultKind::LinkUp => {
                            apply_to_netem(net.netem_mut(up), &ev.kind);
                            apply_to_netem(net.netem_mut(down), &ev.kind);
                        }
                        _ => apply_to_netem(net.netem_mut(up), &ev.kind),
                    }
                }
            }

            // SFU failover (legacy path): reattach each due cohort to the
            // next-nearest live site once its reconnection gap elapses.
            while let Some(pos) = pending_failovers
                .iter()
                .position(|(due_at, _)| now >= *due_at)
            {
                let (_, affected) = pending_failovers.remove(pos);
                {
                    if let Some(site) =
                        failover_site(registry, cfg.provider, &locations[0], dead_sites)
                    {
                        let node = *site_nodes.entry(site.label).or_insert_with(|| {
                            net.add_node(
                                &format!("{} {}", site.provider, site.label),
                                &format!("{}", site.provider),
                                site.location(),
                            )
                        });
                        for &p in &affected {
                            let d = latency.one_way(&locations[p], &site.location());
                            net.add_duplex(aps[p], node, LinkConfig::core(d));
                            servers[p] = node;
                        }
                        // Extend the backbone to every other live site.
                        let others: Vec<NodeId> = site_nodes
                            .values()
                            .copied()
                            .filter(|&s| s != node && !dead_nodes.contains(&s))
                            .collect();
                        for other in others {
                            let pair = (node.min(other), node.max(other));
                            if backbone_pairs.insert(pair) {
                                let d = latency
                                    .one_way(
                                        &site.location(),
                                        &net.geodb()
                                            .lookup(net.addr(other))
                                            .map(|e| e.location)
                                            .unwrap_or_else(|| site.location()),
                                    )
                                    .mul_f64(0.8);
                                net.add_duplex(node, other, LinkConfig::core(d));
                            }
                        }
                        vca_metrics().failovers.inc();
                        if trace::enabled() {
                            trace::record(
                                TraceKind::SfuFailover,
                                now.as_nanos(),
                                trace::intern(site.label),
                                affected.len() as u64,
                                0,
                                0,
                            );
                        }
                        failovers.push((now, site.label.to_string()));
                    }
                    // No live site left: the session stays dark — degraded,
                    // not aborted.
                }
            }

            // Resilience path: probe the fleet on its cadence, then fire
            // every due reconnect attempt — candidate selection routes
            // around dead/observed-down/breaker-open sites, and admission
            // may still refuse (capacity, sessions, or a zombie site that
            // feeds the breaker). Refusals reschedule per backoff until
            // the rejoin budget runs out.
            if let (Some(dir), Some(rc)) = (directory.as_mut(), cfg.resilience.as_ref()) {
                if now >= *next_probe {
                    dir.probe_tick(now);
                    *next_probe = now + rc.probe_every;
                }
                for rec in reconnectors.iter_mut() {
                    if !rec.due(now) {
                        continue;
                    }
                    let p = rec.participant() as usize;
                    let attempt = rec.take_attempt();
                    resilience_metrics().reconnect_attempts.inc();
                    let candidate = dir.candidate(&locations[p], dead_sites, now);
                    let mut admitted = None;
                    let verdict_code = match candidate {
                        None => {
                            rec.on_rejected(now);
                            2
                        }
                        Some(site) => match dir.try_admit(site.label, 0, p as u64, now) {
                            AdmissionVerdict::Admitted => {
                                admitted = Some(site);
                                0
                            }
                            AdmissionVerdict::Rejected(_) => {
                                rec.on_rejected(now);
                                1
                            }
                        },
                    };
                    if trace::enabled() {
                        trace::record(
                            TraceKind::ReconnectAttempt,
                            now.as_nanos(),
                            trace::intern(candidate.map(|s| s.label).unwrap_or("")),
                            p as u64,
                            attempt as u64,
                            verdict_code,
                        );
                    }
                    if matches!(rec.phase(), ReconnectPhase::Abandoned { .. }) {
                        resilience_metrics().reconnects_abandoned.inc();
                    }
                    let Some(site) = admitted else { continue };
                    // Reattach: same wiring as the legacy path, but
                    // anchored on the participant's own location and with
                    // the backbone extension in sorted order (several
                    // participants can land on different sites the same
                    // tick).
                    let node = *site_nodes.entry(site.label).or_insert_with(|| {
                        net.add_node(
                            &format!("{} {}", site.provider, site.label),
                            &format!("{}", site.provider),
                            site.location(),
                        )
                    });
                    let d = latency.one_way(&locations[p], &site.location());
                    net.add_duplex(aps[p], node, LinkConfig::core(d));
                    servers[p] = node;
                    let mut others: Vec<NodeId> = site_nodes
                        .values()
                        .copied()
                        .filter(|&s| s != node && !dead_nodes.contains(&s))
                        .collect();
                    others.sort();
                    for other in others {
                        let pair = (node.min(other), node.max(other));
                        if backbone_pairs.insert(pair) {
                            let d = latency
                                .one_way(
                                    &site.location(),
                                    &net.geodb()
                                        .lookup(net.addr(other))
                                        .map(|e| e.location)
                                        .unwrap_or_else(|| site.location()),
                                )
                                .mul_f64(0.8);
                            net.add_duplex(node, other, LinkConfig::core(d));
                        }
                    }
                    rec.on_admitted(now);
                    if let Some(lat) = rec.rejoin_latency() {
                        resilience_metrics()
                            .rejoin_ms
                            .observe(lat.as_nanos() / 1_000_000);
                    }
                    vca_metrics().failovers.inc();
                    if trace::enabled() {
                        trace::record(
                            TraceKind::SfuFailover,
                            now.as_nanos(),
                            trace::intern(site.label),
                            1,
                            0,
                            0,
                        );
                    }
                    failovers.push((now, site.label.to_string()));
                }
                // Participant conservation: once per feedback interval the
                // sanitizer checks nobody has vanished — every participant
                // is attached to a live site, waiting on a reconnect
                // machine, or abandoned.
                if topology == Topology::Sfu && t > 0 && t % feedback_every == 0 {
                    let mut attached = 0usize;
                    let mut reconnecting = 0usize;
                    let mut abandoned = 0usize;
                    for (p, server) in servers.iter().enumerate().take(n) {
                        if !dead_nodes.contains(server) {
                            attached += 1;
                            continue;
                        }
                        match reconnectors
                            .iter()
                            .rev()
                            .find(|r| r.participant() == p as u64)
                            .map(|r| r.phase())
                        {
                            Some(ReconnectPhase::Waiting { .. }) => reconnecting += 1,
                            Some(ReconnectPhase::Abandoned { .. }) => abandoned += 1,
                            _ => {}
                        }
                    }
                    sanitizer::check(
                        attached + reconnecting + abandoned == n,
                        "vca/participant_conservation",
                        || {
                            format!(
                                "attached {attached} + reconnecting {reconnecting} \
                                 + abandoned {abandoned} != joined {n}"
                            )
                        },
                    );
                }
            }

            // Senders.
            for (i, state) in senders.iter_mut().enumerate() {
                match state {
                    SenderState::Spatial {
                        capture,
                        codec,
                        packetizer,
                        quic,
                    } => {
                        // Controller pacing: the budget refills at the
                        // target rate (capped at ~100 ms of burst) and a
                        // frame spends its wire bytes; capture ticks are
                        // skipped while the budget is in deficit. Frame
                        // ids stay aligned because a skipped tick assigns
                        // no id.
                        if let Some(ctrl) = &controllers[i] {
                            let refill =
                                ctrl.target().as_bps() as f64 / 8.0 * tick.as_secs_f64();
                            pace_budget[i] = (pace_budget[i] + refill).min(refill * 9.0);
                            if pace_budget[i] < 0.0 {
                                continue;
                            }
                        }
                        let frame = capture.next_frame(rng).persona_subset();
                        let payload = codec.encode(&frame);
                        semantic_frame_sizes.push(payload.len());
                        frame_sent_at[i].push(now);
                        let dst = match topology {
                            Topology::Sfu => servers[i],
                            Topology::P2P => clients[1 - i],
                        };
                        for frag in packetizer.split(&payload) {
                            let wire = quic.send(frag.to_bytes());
                            if controllers[i].is_some() {
                                pace_budget[i] -= wire.len() as f64;
                            }
                            net.send(
                                clients[i],
                                dst,
                                PortPair::new(5_000 + i as u16, QUIC_PORT),
                                wire,
                            );
                        }
                    }
                    SenderState::Video { encoder, rtp, .. } => {
                        // 2D persona runs at 30 FPS: every third tick.
                        if t % 3 != 0 {
                            continue;
                        }
                        let size = encoder.next_frame(rng).as_bytes() as usize;
                        let dst = match topology {
                            Topology::Sfu => servers[i],
                            Topology::P2P => clients[1 - i],
                        };
                        let chunks = size.div_ceil(1_200).max(1);
                        for c in 0..chunks {
                            let len = if c + 1 == chunks {
                                size - 1_200 * (chunks - 1)
                            } else {
                                1_200
                            };
                            let pkt = rtp
                                .packetize(
                                    now.as_secs_f64(),
                                    vec![0xAB; len],
                                    c + 1 == chunks,
                                )
                                .to_bytes();
                            net.send(
                                clients[i],
                                dst,
                                PortPair::new(5_000 + i as u16, RTP_PORT),
                                pkt,
                            );
                        }
                    }
                }
            }

            // Audio: every participant talks intermittently; the audio
            // stream runs regardless of persona availability.
            if t % AUDIO_EVERY_TICKS == 0 {
                for i in 0..n {
                    let dst = match topology {
                        Topology::Sfu => servers[i],
                        Topology::P2P => clients[1 - i],
                    };
                    // Both framers hand back one shared wire image per
                    // frame; the network send below shares it without
                    // copying.
                    let (wire, dst_port): (std::sync::Arc<[u8]>, u16) = match persona_type {
                        PersonaType::Spatial => {
                            (audio_quic[i].send(vec![0x0A; AUDIO_PAYLOAD]), QUIC_PORT)
                        }
                        PersonaType::TwoD => (
                            audio_rtp[i]
                                .packetize(now.as_secs_f64(), vec![0x0A; AUDIO_PAYLOAD], true)
                                .to_bytes()
                                .into(),
                            RTP_PORT,
                        ),
                    };
                    net.send(
                        clients[i],
                        dst,
                        PortPair::new(AUDIO_PORT_BASE + i as u16, dst_port),
                        wire,
                    );
                }
            }

            // Let the network move everything submitted this tick.
            net.run_until(now + tick);

            // SFU forwarding: servers relay to every other participant.
            if topology == Topology::Sfu {
                // Dead sites forward nothing; drain whatever was already
                // in flight toward them.
                let drained: Vec<NodeId> = dead_nodes.iter().copied().collect();
                for dn in drained {
                    net.poll_delivered(dn);
                }
                let mut server_list = servers.clone();
                server_list.sort_unstable();
                server_list.dedup();
                for server in server_list {
                    if dead_nodes.contains(&server) {
                        continue;
                    }
                    for d in net.poll_delivered(server) {
                        let Some((sender, _)) = sender_of(d.packet.ports.src, n) else {
                            continue;
                        };
                        for (r, &client) in clients.iter().enumerate() {
                            if r != sender {
                                net.send(server, client, d.packet.ports, d.packet.payload.clone());
                            }
                        }
                    }
                }
                net.run_until(net.now());
            }

            // Receivers (and, for RTCP, the senders being reported on).
            for r in 0..n {
                for d in net.poll_delivered(clients[r]) {
                    let Some((sender, kind)) = sender_of(d.packet.ports.src, n) else {
                        continue;
                    };
                    // RTCP arriving here means *this* node's outgoing
                    // stream is being reported on: close the loop.
                    if kind == StreamKind::Feedback {
                        if d.packet.corrupted {
                            continue;
                        }
                        // PLI: the remote receiver lost decode state and
                        // asks this sender for a fresh keyframe.
                        if let Some(pli) =
                            visionsim_transport::rtcp::PliPacket::parse(&d.packet.payload)
                        {
                            if pli.source_ssrc == r as u32 + 1 {
                                if let SenderState::Video { encoder, .. } = &mut senders[r] {
                                    encoder.force_keyframe();
                                    keyframes_forced[r] += 1;
                                    vca_metrics().keyframes_forced.inc();
                                }
                            }
                            continue;
                        }
                        if let Some(rr) =
                            visionsim_transport::rtcp::ReceiverReportPacket::parse(
                                &d.packet.payload,
                            )
                        {
                            if rr.source_ssrc == r as u32 + 1 {
                                last_rr_loss[r] = rr.loss();
                                if let SenderState::Video {
                                    encoder,
                                    controller,
                                    ..
                                } = &mut senders[r]
                                {
                                    let report = ReceiverReport {
                                        received_bytes: rr.received_bytes as u64,
                                        loss: rr.loss(),
                                        interval_s: 1.0,
                                    };
                                    let target = controller.on_report(&report);
                                    encoder.adapt_to(target);
                                }
                            }
                            continue;
                        }
                        // XR extended report: the delay/rate half of the
                        // congestion signal. Paired with the loss from the
                        // RR that rode the same cadence (it arrives just
                        // ahead on the same FIFO path).
                        if let Some(xr) =
                            visionsim_transport::rtcp::XrPacket::parse(&d.packet.payload)
                        {
                            if xr.source_ssrc == r as u32 + 1 {
                                if let Some(ctrl) = &mut controllers[r] {
                                    let sig = CongestionSignals {
                                        loss: last_rr_loss[r],
                                        arrival: DataRate::from_kbps(xr.arrival_kbps as u64),
                                        queue_delay_us: xr.jitter_us as u64,
                                    };
                                    let target = ctrl.on_report(now, &sig);
                                    if trace::enabled() {
                                        trace::record(
                                            TraceKind::RtcpReport,
                                            now.as_nanos(),
                                            0,
                                            r as u64,
                                            (last_rr_loss[r] * 1_000.0).round() as u64,
                                            xr.arrival_kbps as u64,
                                        );
                                    }
                                    if let SenderState::Video { encoder, .. } =
                                        &mut senders[r]
                                    {
                                        encoder.adapt_to(target);
                                    }
                                }
                            }
                        }
                        continue;
                    }
                    let Some(peer) = receivers[r].get_mut(&sender) else {
                        continue;
                    };
                    peer.interval_bytes += d.packet.wire_size().as_bytes();
                    peer.on_arrival(d.at, d.packet.wire_size().as_bytes());
                    rx_bytes_since_frame[r] += d.packet.payload.len();
                    if d.packet.corrupted {
                        continue;
                    }
                    if kind == StreamKind::Audio {
                        continue; // audio decodes out of band of this study
                    }
                    match persona_type {
                        PersonaType::Spatial => {
                            if let Some(quic_pkt) = visionsim_transport::quic::QuicPacket::parse(
                                &d.packet.payload,
                                &SESSION_KEY,
                            ) {
                                let frames = match quic_pkt {
                                    visionsim_transport::quic::QuicPacket::Short {
                                        frames, ..
                                    } => frames,
                                    visionsim_transport::quic::QuicPacket::Long {
                                        frames, ..
                                    } => frames,
                                };
                                for f in frames {
                                    if let visionsim_transport::quic::QuicFrame::Stream {
                                        data,
                                        ..
                                    } = f
                                    {
                                        if let Some(frag) = Fragment::parse(&data) {
                                            if let Some((frame_id, payload)) =
                                                peer.assembler.push(frag)
                                            {
                                                peer.on_frame_complete(frame_id);
                                                if let Some(&sent) = frame_sent_at
                                                    [sender]
                                                    .get(frame_id as usize)
                                                {
                                                    e2e_latency_ms[r].push(
                                                        d.at.since(sent).as_millis_f64(),
                                                    );
                                                }
                                                let _ = peer.codec.decode(&payload);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        PersonaType::TwoD => {
                            if let Some(pkt) =
                                visionsim_transport::rtp::RtpPacket::parse(&d.packet.payload)
                            {
                                let seq = pkt.header.seq;
                                let mut gap_seen = false;
                                if let Some(last) = peer.last_seq {
                                    let gap = seq.wrapping_sub(last) as u64;
                                    if gap > 1 && gap < 1_000 {
                                        peer.lost += gap - 1;
                                        gap_seen = true;
                                    }
                                }
                                peer.last_seq = Some(seq);
                                peer.received += 1;
                                // A gap means decode state is broken until
                                // the next I-frame: ask for one now, at
                                // most twice a second per sender.
                                let cooled = peer
                                    .last_pli_at
                                    .is_none_or(|at| now.since(at) >= SimDuration::from_millis(500));
                                if gap_seen && cooled {
                                    peer.last_pli_at = Some(now);
                                    pli_sent[r] += 1;
                                    vca_metrics().pli_sent.inc();
                                    let pli = visionsim_transport::rtcp::PliPacket {
                                        reporter_ssrc: r as u32 + 1,
                                        source_ssrc: sender as u32 + 1,
                                    };
                                    net.send(
                                        clients[r],
                                        clients[sender],
                                        PortPair::new(RTCP_PORT_BASE + r as u16, RTCP_PORT),
                                        pli.to_bytes().to_vec(),
                                    );
                                }
                            }
                        }
                    }
                }
            }

            // Rendering (spatial sessions, per AVP participant).
            if persona_type == PersonaType::Spatial {
                for r in 0..n {
                    if cfg.participants[r].device != DeviceKind::VisionPro {
                        continue;
                    }
                    let viewer = gazes[r].step(tick.as_secs_f64(), rng);
                    // Slow in-seat drift (OU process, ~10 cm scale).
                    for d in seat_drift.iter_mut() {
                        let pull = 0.5 * tick.as_secs_f64() as f32;
                        let dt_sqrt = (tick.as_secs_f64() as f32).sqrt();
                        d.x = d.x * (1.0 - pull) + rng.normal(0.0, 0.05) as f32 * dt_sqrt;
                        d.y = d.y * (1.0 - pull) + rng.normal(0.0, 0.02) as f32 * dt_sqrt;
                        d.z = d.z * (1.0 - pull) + rng.normal(0.0, 0.05) as f32 * dt_sqrt;
                    }
                    let personas: Vec<PersonaInstance> = persona_positions
                        .iter()
                        .zip(seat_drift.iter())
                        .map(|(&p, &d)| PersonaInstance::paper_ladder(p + d))
                        .collect();
                    // Unavailable personas are not rendered; a participant
                    // degraded to the 2D fallback renders no spatial
                    // geometry either (the fallback stream replaces it).
                    let renders = if availability[r].is_available() && ladders[r].is_spatial() {
                        pipeline.evaluate(&viewer, &personas)
                    } else {
                        Vec::new()
                    };
                    let cost =
                        cost_model.frame(&renders, rx_bytes_since_frame[r], rng);
                    counters[r].record(now, &cost);
                    rx_bytes_since_frame[r] = 0;
                }
            }

            // Feedback interval.
            if t > 0 && t % feedback_every == 0 {
                for r in 0..n {
                    match persona_type {
                        PersonaType::Spatial => {
                            // With the loop closed, the spatial stream is
                            // no longer open: report frame-gap loss (RR)
                            // plus jitter and arrival rate (XR) toward
                            // each sender, before the interval counters
                            // drain below.
                            if cfg.congestion_control {
                                let interval_s =
                                    (feedback_every * tick.as_nanos()) as f64 / 1e9;
                                let reports: Vec<(usize, Vec<u8>, Vec<u8>)> = receivers[r]
                                    .iter_mut()
                                    .map(|(&s, peer)| {
                                        let complete = peer.frames_completed_interval;
                                        let lost = peer.frames_lost_interval;
                                        let loss = if complete + lost == 0 {
                                            0.0
                                        } else {
                                            lost as f64 / (complete + lost) as f64
                                        };
                                        let (jitter_us, arrival_kbps) =
                                            peer.take_xr(interval_s);
                                        let rr =
                                            visionsim_transport::rtcp::ReceiverReportPacket {
                                                reporter_ssrc: r as u32 + 1,
                                                source_ssrc: s as u32 + 1,
                                                fraction_lost:
                                                    visionsim_transport::rtcp::ReceiverReportPacket::q8_loss(loss),
                                                cumulative_lost: lost as u32,
                                                highest_seq: peer
                                                    .last_frame_id
                                                    .unwrap_or(0)
                                                    as u32,
                                                received_bytes: peer.interval_bytes as u32,
                                            };
                                        peer.interval_bytes = 0;
                                        let xr = visionsim_transport::rtcp::XrPacket {
                                            reporter_ssrc: r as u32 + 1,
                                            source_ssrc: s as u32 + 1,
                                            jitter_us,
                                            arrival_kbps,
                                        };
                                        (s, rr.to_bytes().to_vec(), xr.to_bytes().to_vec())
                                    })
                                    .collect();
                                for (s, rr, xr) in reports {
                                    let ports =
                                        PortPair::new(RTCP_PORT_BASE + r as u16, RTCP_PORT);
                                    net.send(clients[r], clients[s], ports, rr);
                                    net.send(clients[r], clients[s], ports, xr);
                                }
                            }
                            // Per-interval completeness from frame-id gaps
                            // (delay is not loss; the stream is open-loop).
                            let mut worst: f64 = 1.0;
                            for peer in receivers[r].values_mut() {
                                worst = worst.min(peer.take_interval_completeness());
                            }
                            let state = availability[r].on_interval(worst);
                            availability_log[r].push((now, state));
                            // The same observable drives graceful
                            // degradation, with stickier recovery — and,
                            // with the loop closed, the sender's own
                            // controller folds in: a target below the
                            // ~700 kbps spatial floor (§4.3) reads as
                            // congestion, settling the ladder into 2D
                            // instead of oscillating on a noisy
                            // completeness signal.
                            let ladder_input = match &controllers[r] {
                                Some(ctrl) => {
                                    let head = ctrl.target().as_bps() as f64
                                        / DataRate::from_kbps(SPATIAL_FLOOR_KBPS).as_bps()
                                            as f64;
                                    worst.min(head.min(1.0))
                                }
                                None => worst,
                            };
                            let mode = ladders[r].on_interval(ladder_input);
                            let prev = mode_log[r].last().map(|&(_, m)| m);
                            if prev.is_some_and(|p| p != mode) {
                                vca_metrics().mode_switches.inc();
                                if trace::enabled() {
                                    trace::record(
                                        TraceKind::ModeSwitch,
                                        now.as_nanos(),
                                        0,
                                        r as u64,
                                        match mode {
                                            PersonaMode::Spatial => 0,
                                            PersonaMode::TwoDFallback => 1,
                                        },
                                        0,
                                    );
                                }
                            }
                            mode_log[r].push((now, mode));
                        }
                        PersonaType::TwoD => {
                            // Emit in-band RTCP receiver reports toward
                            // each sender; adaptation happens when (and
                            // if) the report arrives.
                            let reports: Vec<(usize, Vec<u8>, Option<Vec<u8>>)> = receivers[r]
                                .iter_mut()
                                .map(|(&s, peer)| {
                                    let loss = if peer.received + peer.lost == 0 {
                                        0.0
                                    } else {
                                        peer.lost as f64
                                            / (peer.received + peer.lost) as f64
                                    };
                                    let rr = visionsim_transport::rtcp::ReceiverReportPacket {
                                        reporter_ssrc: r as u32 + 1,
                                        source_ssrc: s as u32 + 1,
                                        fraction_lost:
                                            visionsim_transport::rtcp::ReceiverReportPacket::q8_loss(
                                                loss,
                                            ),
                                        cumulative_lost: peer.lost as u32,
                                        highest_seq: peer.last_seq.unwrap_or(0) as u32,
                                        received_bytes: peer.interval_bytes as u32,
                                    };
                                    peer.interval_bytes = 0;
                                    peer.lost = 0;
                                    peer.received = 0;
                                    let xr = if cfg.congestion_control {
                                        let interval_s =
                                            (feedback_every * tick.as_nanos()) as f64 / 1e9;
                                        let (jitter_us, arrival_kbps) =
                                            peer.take_xr(interval_s);
                                        Some(
                                            visionsim_transport::rtcp::XrPacket {
                                                reporter_ssrc: r as u32 + 1,
                                                source_ssrc: s as u32 + 1,
                                                jitter_us,
                                                arrival_kbps,
                                            }
                                            .to_bytes()
                                            .to_vec(),
                                        )
                                    } else {
                                        None
                                    };
                                    (s, rr.to_bytes().to_vec(), xr)
                                })
                                .collect();
                            for (s, payload, xr) in reports {
                                let ports =
                                    PortPair::new(RTCP_PORT_BASE + r as u16, RTCP_PORT);
                                net.send(clients[r], clients[s], ports, payload);
                                if let Some(xr) = xr {
                                    net.send(clients[r], clients[s], ports, xr);
                                }
                            }
                            if let SenderState::Video { encoder, .. } = &senders[r] {
                                quality_log[r].push((now, encoder.quality()));
                            }
                        }
                    }
                }
            }
        }
        self.t += 1;
    }

    /// Tear down and summarize: consumes the stepper and produces the
    /// same [`SessionOutcome`] the batch runner returns. Callable at any
    /// point — the live service finishes sessions early on `leave`.
    pub fn finish(self) -> SessionOutcome {
        let SessionSim {
            net,
            tap_ids,
            clients,
            senders,
            persona_type,
            topology,
            assignment,
            counters,
            availability_log,
            semantic_frame_sizes,
            e2e_latency_ms,
            mode_log,
            ladders,
            quality_log,
            failovers,
            pli_sent,
            keyframes_forced,
            reconnectors,
            directory,
            ..
        } = self;

        let taps: Vec<Vec<TapRecord>> = tap_ids
            .iter()
            .map(|&t| net.tap_records(t).to_vec())
            .collect();
        let client_addrs = clients.iter().map(|&c| net.addr(c)).collect();
        let final_quality = senders
            .iter()
            .map(|s| match s {
                SenderState::Video { encoder, .. } => encoder.quality(),
                SenderState::Spatial { .. } => 1.0,
            })
            .collect();
        SessionOutcome {
            persona_type,
            topology,
            assignment,
            taps,
            client_addrs,
            counters,
            availability: availability_log,
            semantic_frame_sizes,
            e2e_latency_ms,
            geodb: net.geodb().clone(),
            final_quality,
            mode_log,
            fallbacks: ladders.iter().map(|l| l.fallbacks()).collect(),
            quality_log,
            failovers,
            pli_sent,
            keyframes_forced,
            reconnects: reconnectors
                .iter()
                .map(|r| ReconnectSummary {
                    participant: r.participant() as usize,
                    attempts: r.attempts(),
                    rejected: r.rejected(),
                    phase: r.phase(),
                    rejoin: r.rejoin_latency(),
                })
                .collect(),
            admission_rejects: directory.as_ref().map(|d| d.total_rejects()).unwrap_or(0),
        }
    }
}

/// The 8-byte QUIC connection id encoding the sender index.
fn sender_dcid(i: usize) -> [u8; 8] {
    let mut d = *b"PRSN\0\0\0\0";
    d[4..].copy_from_slice(&(i as u32).to_le_bytes());
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_capture::analysis::CaptureAnalysis;
    use visionsim_geo::cities;

    fn sf() -> City {
        cities::by_name("San Francisco, CA").unwrap()
    }
    fn nyc() -> City {
        cities::by_name("New York, NY").unwrap()
    }

    fn short(cfg: &mut SessionConfig) {
        cfg.duration = SimDuration::from_secs(8);
    }

    #[test]
    fn facetime_both_avp_is_spatial_quic_via_server() {
        let mut cfg = SessionConfig::two_party(
            Provider::FaceTime,
            (DeviceKind::VisionPro, sf()),
            (DeviceKind::VisionPro, nyc()),
            1,
        );
        short(&mut cfg);
        let out = SessionRunner::new(cfg).run();
        assert_eq!(out.persona_type, PersonaType::Spatial);
        assert_eq!(out.topology, Topology::Sfu);
        let a = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
        assert!(a.dominant_protocol().is_quic(), "{:?}", a.dominant_protocol());
        // Spatial persona uplink lands in the sub-Mbps band (paper: 0.67).
        let up = a.uplink_rate().as_mbps_f64();
        assert!((0.3..1.2).contains(&up), "uplink {up} Mbps");
    }

    #[test]
    fn facetime_mixed_devices_fall_back_to_rtp_p2p() {
        let mut cfg = SessionConfig::two_party(
            Provider::FaceTime,
            (DeviceKind::VisionPro, sf()),
            (DeviceKind::MacBook, nyc()),
            2,
        );
        short(&mut cfg);
        let out = SessionRunner::new(cfg).run();
        assert_eq!(out.persona_type, PersonaType::TwoD);
        assert_eq!(out.topology, Topology::P2P);
        let a = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
        assert!(a.dominant_protocol().is_rtp());
        // FaceTime 2D persona ≈ 2 Mbps — more than spatial.
        let up = a.uplink_rate().as_mbps_f64();
        assert!((1.2..3.0).contains(&up), "uplink {up} Mbps");
    }

    #[test]
    fn webex_needs_most_bandwidth_zoom_least() {
        let run = |provider| {
            let mut cfg = SessionConfig::two_party(
                provider,
                (DeviceKind::VisionPro, sf()),
                (DeviceKind::VisionPro, nyc()),
                3,
            );
            short(&mut cfg);
            let out = SessionRunner::new(cfg).run();
            let a = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
            a.uplink_rate().as_mbps_f64()
        };
        let webex = run(Provider::Webex);
        let zoom = run(Provider::Zoom);
        let teams = run(Provider::Teams);
        assert!(webex > 4.0, "webex {webex}");
        assert!((1.0..2.2).contains(&zoom), "zoom {zoom}");
        assert!(zoom < teams && teams < webex, "ordering: z {zoom} t {teams} w {webex}");
    }

    #[test]
    fn sfu_peer_is_the_provider_server_p2p_peer_is_the_client() {
        // Webex (SFU): the subject's peer is a Webex node.
        let mut cfg = SessionConfig::two_party(
            Provider::Webex,
            (DeviceKind::VisionPro, sf()),
            (DeviceKind::MacBook, nyc()),
            4,
        );
        short(&mut cfg);
        let out = SessionRunner::new(cfg).run();
        let a = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
        let peers = a.peers(&out.geodb);
        assert!(peers.iter().any(|p| p.org.as_deref() == Some("Webex")));
        // Zoom (P2P at 2 users): the peer is the other client.
        let mut cfg = SessionConfig::two_party(
            Provider::Zoom,
            (DeviceKind::VisionPro, sf()),
            (DeviceKind::MacBook, nyc()),
            5,
        );
        short(&mut cfg);
        let out = SessionRunner::new(cfg).run();
        let a = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
        let peers = a.peers(&out.geodb);
        assert!(peers.iter().all(|p| p.org.as_deref() == Some("client")));
    }

    #[test]
    fn constrained_uplink_kills_the_spatial_persona() {
        // §4.3: below ~700 kbps the persona becomes unavailable.
        let mut cfg = SessionConfig::two_party(
            Provider::FaceTime,
            (DeviceKind::VisionPro, sf()),
            (DeviceKind::VisionPro, nyc()),
            6,
        );
        cfg.duration = SimDuration::from_secs(12);
        cfg.uplink_limits = vec![(0, DataRate::from_kbps(400))];
        let out = SessionRunner::new(cfg).run();
        // The receiver of the constrained sender (participant 1) sees the
        // persona go down.
        let frac = out.availability_fraction(1);
        assert!(frac < 0.7, "persona stayed up: {frac}");
    }

    #[test]
    fn unconstrained_spatial_session_stays_available() {
        let mut cfg = SessionConfig::two_party(
            Provider::FaceTime,
            (DeviceKind::VisionPro, sf()),
            (DeviceKind::VisionPro, nyc()),
            7,
        );
        cfg.duration = SimDuration::from_secs(12);
        let out = SessionRunner::new(cfg).run();
        assert!(out.availability_fraction(0) > 0.9);
        assert!(out.availability_fraction(1) > 0.9);
    }

    #[test]
    fn constrained_uplink_degrades_2d_quality_instead() {
        // The adaptive path: Webex under a 1 Mbps uplink drops quality but
        // keeps flowing.
        let mut cfg = SessionConfig::two_party(
            Provider::Webex,
            (DeviceKind::VisionPro, sf()),
            (DeviceKind::MacBook, nyc()),
            8,
        );
        cfg.duration = SimDuration::from_secs(15);
        cfg.uplink_limits = vec![(0, DataRate::from_mbps(1))];
        let out = SessionRunner::new(cfg).run();
        assert!(
            out.final_quality[0] < 0.5,
            "encoder never adapted: q = {}",
            out.final_quality[0]
        );
    }

    #[test]
    fn closed_loop_congestion_settles_the_ladder_without_oscillating() {
        // A spatial sender behind a 400 kbps finite-queue uplink, with the
        // congestion loop closed: the controller throttles toward the
        // bottleneck, its utilization folds into the ladder, and the
        // session settles in the 2D fallback instead of flapping.
        let mut cfg = SessionConfig::two_party(
            Provider::FaceTime,
            (DeviceKind::VisionPro, sf()),
            (DeviceKind::VisionPro, nyc()),
            31,
        );
        cfg.duration = SimDuration::from_secs(24);
        cfg.uplink_limits = vec![(0, DataRate::from_kbps(400))];
        cfg.congestion_control = true;
        let out = SessionRunner::new(cfg).run();
        // The constrained participant degraded at all (anti-vacuity)…
        assert!(out.fallbacks[0] >= 1, "ladder never degraded");
        assert!(
            out.spatial_fraction(0) < 0.6,
            "spent too long spatial: {}",
            out.spatial_fraction(0)
        );
        // …and gracefully: after convergence (12 s in), at most one mode
        // switch per 10 simulated seconds.
        let converged: Vec<_> = out.mode_log[0]
            .iter()
            .filter(|(at, _)| *at >= SimTime::from_secs(12))
            .collect();
        let switches = converged
            .windows(2)
            .filter(|w| w[0].1 != w[1].1)
            .count();
        assert!(
            switches <= 1,
            "ladder oscillated after convergence: {switches} switches in 12 s \
             ({:?})",
            out.mode_log[0]
        );
    }

    #[test]
    fn closed_loop_unconstrained_session_stays_spatial() {
        // The loop must not tax a clean session: with headroom everywhere
        // the controller probes to its ceiling and the ladder never fires.
        let mut cfg = SessionConfig::two_party(
            Provider::FaceTime,
            (DeviceKind::VisionPro, sf()),
            (DeviceKind::VisionPro, nyc()),
            32,
        );
        cfg.duration = SimDuration::from_secs(16);
        cfg.congestion_control = true;
        let out = SessionRunner::new(cfg).run();
        assert_eq!(out.fallbacks[0], 0, "mode log: {:?}", out.mode_log[0]);
        assert_eq!(out.fallbacks[1], 0, "mode log: {:?}", out.mode_log[1]);
        assert!(out.availability_fraction(0) > 0.9);
        assert!(out.availability_fraction(1) > 0.9);
    }

    #[test]
    fn five_user_session_renders_in_the_figure6_band() {
        let cities: Vec<City> = visionsim_geo::cities::us_vantages();
        let mut cfg = SessionConfig::facetime_avp(5, &cities, 9);
        cfg.duration = SimDuration::from_secs(8);
        let out = SessionRunner::new(cfg).run();
        let gpu = out.counters[0].gpu_boxplot();
        assert!(
            (5.0..11.0).contains(&gpu.mean),
            "five-user GPU mean {} ms",
            gpu.mean
        );
        let tris = out.counters[0].triangles_boxplot();
        assert!(tris.mean > 78_030.0, "triangles {tris}");
    }

    #[test]
    fn audio_flows_alongside_media_in_both_modes() {
        // Spatial: audio rides QUIC (same connection, stream 1).
        let mut cfg = SessionConfig::two_party(
            Provider::FaceTime,
            (DeviceKind::VisionPro, sf()),
            (DeviceKind::VisionPro, nyc()),
            21,
        );
        short(&mut cfg);
        let out = SessionRunner::new(cfg).run();
        let audio_pkts = out.taps[0]
            .iter()
            .filter(|r| r.src == out.client_addrs[0] && r.ports.src == AUDIO_PORT_BASE)
            .count();
        assert!(audio_pkts > 200, "audio packets: {audio_pkts}");
        // Audio frames classify as QUIC too (same encrypted transport).
        let a = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
        for (key, proto) in a.protocols() {
            if key.ports.src == AUDIO_PORT_BASE {
                assert!(proto.is_quic(), "spatial audio spoke {proto:?}");
            }
        }

        // 2D: audio is an RTP/Opus flow (PT 111).
        let mut cfg = SessionConfig::two_party(
            Provider::Zoom,
            (DeviceKind::VisionPro, sf()),
            (DeviceKind::MacBook, nyc()),
            22,
        );
        short(&mut cfg);
        let out = SessionRunner::new(cfg).run();
        let a = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
        let audio_proto = a
            .protocols()
            .into_iter()
            .find(|(k, _)| k.ports.src == AUDIO_PORT_BASE && k.src == out.client_addrs[0])
            .map(|(_, p)| p)
            .expect("audio flow present");
        assert_eq!(
            audio_proto,
            visionsim_transport::classify::WireProtocol::Rtp(
                visionsim_transport::rtp::PayloadType::OpusAudio
            )
        );
    }

    #[test]
    fn rtcp_feedback_is_in_band_and_classified() {
        let mut cfg = SessionConfig::two_party(
            Provider::Webex,
            (DeviceKind::VisionPro, sf()),
            (DeviceKind::MacBook, nyc()),
            23,
        );
        short(&mut cfg);
        let out = SessionRunner::new(cfg).run();
        // U2's AP sees the RTCP reports U2 sends toward U1.
        let a = CaptureAnalysis::new(out.taps[1].iter(), out.client_addrs[1]);
        let rtcp_flows = a
            .protocols()
            .into_iter()
            .filter(|(k, p)| {
                k.ports.dst == RTCP_PORT
                    && *p == visionsim_transport::classify::WireProtocol::Rtcp
            })
            .count();
        assert!(rtcp_flows >= 1, "no classified RTCP flow at U2's AP");
        // RTCP byte volume must be tiny vs media (it is feedback, not a
        // stream of its own).
        let rtcp_bytes: u64 = out.taps[1]
            .iter()
            .filter(|r| r.ports.dst == RTCP_PORT)
            .map(|r| r.wire_size.as_bytes())
            .sum();
        let media_bytes: u64 = out.taps[1]
            .iter()
            .filter(|r| r.ports.dst != RTCP_PORT)
            .map(|r| r.wire_size.as_bytes())
            .sum();
        assert!(rtcp_bytes * 50 < media_bytes, "RTCP overhead too large");
    }

    #[test]
    fn fluctuating_uplink_flaps_the_persona() {
        // 6 s of plenty, 6 s starved, cycling: the persona must flap —
        // down during dips, recovered during clear spells.
        use visionsim_net::netem::RateProfile;
        let mut cfg = SessionConfig::two_party(
            Provider::FaceTime,
            (DeviceKind::VisionPro, sf()),
            (DeviceKind::VisionPro, nyc()),
            77,
        );
        cfg.duration = SimDuration::from_secs(24);
        cfg.uplink_profile = Some((
            0,
            RateProfile::new(vec![
                (SimDuration::from_secs(6), DataRate::from_mbps(10)),
                (SimDuration::from_secs(6), DataRate::from_kbps(200)),
            ]),
        ));
        let out = SessionRunner::new(cfg).run();
        let frac = out.availability_fraction(1);
        assert!(
            (0.15..0.85).contains(&frac),
            "persona should flap, availability {frac}"
        );
        // The timeline actually transitions both ways.
        let transitions = out.availability[1]
            .windows(2)
            .filter(|w| w[0].1 != w[1].1)
            .count();
        assert!(transitions >= 2, "only {transitions} transitions");
    }

    #[test]
    fn downlink_scales_with_participant_count() {
        let cities: Vec<City> = visionsim_geo::cities::us_vantages();
        let rate_for = |users: usize| {
            let mut cfg = SessionConfig::facetime_avp(users, &cities, 10 + users as u64);
            cfg.duration = SimDuration::from_secs(8);
            let out = SessionRunner::new(cfg).run();
            let a = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
            a.downlink_rate().as_mbps_f64()
        };
        let two = rate_for(2);
        let four = rate_for(4);
        // Figure 6(c): ~linear in the number of remote personas.
        let ratio = four / two;
        assert!((2.0..4.5).contains(&ratio), "scaling ratio {ratio}");
    }

    /// Regression: two staggered ServerDown faults on *different* sites,
    /// the second landing while the first cohort's reattach is still
    /// pending. The old single-slot `pending_failover` overwrote the
    /// earlier cohort, silently stranding it; the queue reattaches both.
    #[test]
    fn staggered_server_down_faults_reattach_both_cohorts() {
        let mut cfg = SessionConfig::two_party(
            Provider::FaceTime,
            (DeviceKind::VisionPro, sf()),
            (DeviceKind::VisionPro, nyc()),
            77,
        );
        // Geo-distributed placement puts the coasts on distinct sites, so
        // the two faults kill two different servers.
        cfg.policy = AssignmentPolicy::GeoDistributed;
        cfg.duration = SimDuration::from_secs(10);
        // Cohort 1's reattach is due at 2.5 s; the second site dies at
        // 2 s, inside that window.
        cfg.fault_plans = vec![
            (
                0,
                FaultPlan::server_outage(
                    SimTime::from_secs(1),
                    SimDuration::from_secs(1),
                    SimDuration::from_millis(500),
                ),
            ),
            (
                1,
                FaultPlan::server_outage(
                    SimTime::from_secs(2),
                    SimDuration::from_secs(1),
                    SimDuration::from_millis(500),
                ),
            ),
        ];
        let out = SessionRunner::new(cfg).run();
        let sites: Vec<&str> = out
            .assignment
            .as_ref()
            .unwrap()
            .attachments
            .iter()
            .map(|s| s.label)
            .collect();
        assert_ne!(sites[0], sites[1], "test needs distinct initial sites");
        assert_eq!(
            out.failovers.len(),
            2,
            "both cohorts must reattach: {:?}",
            out.failovers
        );
        for (_, label) in &out.failovers {
            assert!(
                !sites.contains(&label.as_str()),
                "reattached to a dead site: {label}"
            );
        }
    }

    /// With resilience on, a ServerDown spawns per-participant reconnect
    /// machines instead of the legacy cohort slot: everyone reattaches
    /// through admission, the episode summaries land in the outcome, and
    /// an idle fleet refuses nobody.
    #[test]
    fn resilience_reconnects_all_participants_after_server_down() {
        let mut cfg = SessionConfig::two_party(
            Provider::FaceTime,
            (DeviceKind::VisionPro, sf()),
            (DeviceKind::VisionPro, nyc()),
            78,
        );
        cfg.duration = SimDuration::from_secs(10);
        cfg.resilience = Some(ResilienceConfig::default());
        cfg.fault_plans = vec![(
            0,
            FaultPlan::server_outage(
                SimTime::from_secs(2),
                SimDuration::from_secs(1),
                SimDuration::from_millis(500),
            ),
        )];
        let out = SessionRunner::new(cfg).run();
        // NearestToInitiator puts both participants on one site, so one
        // outage strands both.
        assert_eq!(out.reconnects.len(), 2, "{:?}", out.reconnects);
        for r in &out.reconnects {
            assert!(
                matches!(r.phase, ReconnectPhase::Reattached { .. }),
                "{r:?}"
            );
            assert_eq!(r.attempts, 1, "{r:?}");
            assert_eq!(r.rejected, 0, "{r:?}");
            let rejoin = r.rejoin.expect("rejoin latency once reattached");
            assert!(rejoin >= SimDuration::from_millis(1_500), "{rejoin:?}");
        }
        assert_eq!(out.admission_rejects, 0);
        assert_eq!(out.failovers.len(), 2, "{:?}", out.failovers);
    }
}
