//! Fleet-scale session population: 100k+ concurrent telepresence sessions
//! over the global SFU map, run on the sharded conservative-PDES engine.
//!
//! The paper measures one session with 2–8 users; this module models the
//! *population* such sessions form in production. Each SFU site hosts a
//! deterministic arrival/departure process: sessions arrive Poisson-style
//! at the site nearest their initiator, draw a 2–8-user roster, pass
//! through the PR 8 capacity/admission envelope, hold for an
//! exponentially distributed lifetime, and depart. Remote roster members
//! attach at their own regional site, so admission, join latency, and
//! teardown all cross the backbone as [`Envelope`]s through the
//! lookahead barrier — never as shared-memory shortcuts.
//!
//! The packet-level [`crate::session::SessionRunner`] is three orders of
//! magnitude too heavy to run 100k times; sessions here are modeled at
//! the signaling/occupancy level (slots, participants, join latency),
//! which is exactly what the fleet artifact reports on.
//!
//! Determinism at any shard/thread count rests on per-*site* isolation:
//! each site owns its RNG stream, its egress sequence counters, and its
//! counters; cross-site effects ride the engine's deterministic barrier
//! exchange.

use std::collections::BTreeMap;

use visionsim_core::event::{EventQueue, ScratchBatch};
use visionsim_core::par::derive_seed;
use visionsim_core::sanitizer;
use visionsim_core::shard::{ConservativeEngine, Envelope, ShardWorld};
use visionsim_core::stats::Percentiles;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::SimRng;
use visionsim_geo::propagation::LatencyModel;
use visionsim_geo::sites::{SiteCapacity, SiteRegistry};
use visionsim_net::xshard::{LinkMatrix, ShardIngress, SiteEgress};

/// Fleet workload parameters.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// The SFU site map (sessions arrive at every site).
    pub registry: SiteRegistry,
    /// Per-site capacity envelope (PR 8 admission applies at every site).
    pub capacity: SiteCapacity,
    /// Baseline per-site session arrival rate, sessions per second.
    pub base_arrival_hz: f64,
    /// Labels of sites that run hot (popular metros).
    pub hot_sites: Vec<&'static str>,
    /// Arrival-rate multiplier applied to hot sites.
    pub hot_multiplier: f64,
    /// Probability that a roster member is remote (attaches at another
    /// site, crossing the backbone).
    pub remote_prob: f64,
    /// Mean session lifetime.
    pub mean_lifetime: SimDuration,
    /// Lifetime floor; kept well above the worst backbone RTT so attach
    /// acknowledgements always land before the session departs.
    pub min_lifetime: SimDuration,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Root seed; per-site streams derive from it collision-free.
    pub seed: u64,
}

impl FleetConfig {
    /// The ROADMAP scale target: 16 worldwide sites sized so the fleet
    /// peaks above 100k concurrent sessions / 500k participants, with
    /// the hot metros pushed into their admission envelopes.
    pub fn paper_scale(seed: u64) -> Self {
        FleetConfig {
            registry: SiteRegistry::global_fleet(),
            capacity: SiteCapacity::hyperscale(),
            base_arrival_hz: 300.0,
            hot_sites: vec!["US-W", "US-E", "EU-W", "AS-E"],
            hot_multiplier: 1.4,
            remote_prob: 0.3,
            mean_lifetime: SimDuration::from_secs(30),
            min_lifetime: SimDuration::from_secs(2),
            duration: SimDuration::from_secs(75),
            seed,
        }
    }

    /// A seconds-long miniature with the same shape (arrivals, remote
    /// attaches, rejections) for tests and the determinism suite.
    pub fn smoke(seed: u64) -> Self {
        FleetConfig {
            registry: SiteRegistry::global_fleet(),
            capacity: SiteCapacity::regional(),
            base_arrival_hz: 16.0,
            hot_sites: vec!["US-W", "EU-W"],
            hot_multiplier: 1.5,
            remote_prob: 0.35,
            mean_lifetime: SimDuration::from_secs(6),
            min_lifetime: SimDuration::from_secs(2),
            duration: SimDuration::from_secs(12),
            seed,
        }
    }

    fn arrival_hz(&self, label: &str) -> f64 {
        if self.hot_sites.contains(&label) {
            self.base_arrival_hz * self.hot_multiplier
        } else {
            self.base_arrival_hz
        }
    }
}

/// Signaling messages crossing the backbone between sites.
#[derive(Clone, Debug)]
pub enum FleetMsg {
    /// Home site asks a regional site to attach `count` remote roster
    /// members of `session`.
    Attach { session: u64, count: u32 },
    /// Regional site's admission verdict, returned to the home site.
    AttachAck {
        session: u64,
        count: u32,
        admitted: bool,
    },
    /// Release `count` participants previously attached here.
    Detach { count: u32 },
}

/// Per-shard event payloads. Every event names its global site.
#[derive(Clone, Debug)]
enum FleetEvent {
    /// A new session arrives at `site`.
    Arrival { site: u32 },
    /// `session` (homed at `site`) reaches end of life.
    Departure { site: u32, session: u64 },
    /// Once-a-second occupancy sample at `site`.
    Sample { site: u32 },
    /// A barrier-delivered cross-site message for `dst`.
    Msg { src: u32, dst: u32, msg: FleetMsg },
}

/// A live session's bookkeeping at its home site.
#[derive(Clone, Debug)]
struct SessionRec {
    arrived_at: SimTime,
    local: u32,
    /// Remote roster groups: (site, count, admission verdict if known).
    remote: Vec<(u32, u32, Option<bool>)>,
}

/// One SFU site: RNG stream, occupancy, counters, join-latency record.
struct SiteCell {
    site: u32,
    label: &'static str,
    rng: SimRng,
    egress: SiteEgress,
    capacity: SiteCapacity,
    arrival_gap_mean_s: f64,
    remote_prob: f64,
    mean_extra_life_s: f64,
    min_lifetime: SimDuration,
    window_start: SimTime,
    end: SimTime,

    active_sessions: u32,
    attached: u32,
    next_session: u64,
    sessions: BTreeMap<u64, SessionRec>,
    join_ms: Percentiles,

    arrivals: u64,
    admitted_sessions: u64,
    rejected_sessions: u64,
    admitted_participants: u64,
    rejected_participants: u64,
    released_participants: u64,
    departed_sessions: u64,
    admitted_in_window: u64,

    samples: Vec<(u64, u32, u32)>,
    peak_sessions: u32,
    peak_participants: u32,
}

impl SiteCell {
    fn new(site: u32, label: &'static str, cfg: &FleetConfig) -> Self {
        let hz = cfg.arrival_hz(label);
        assert!(hz > 0.0, "site {label} has no arrival process");
        let extra = cfg
            .mean_lifetime
            .saturating_sub(cfg.min_lifetime)
            .as_secs_f64();
        SiteCell {
            site,
            label,
            rng: SimRng::seed_from_u64(derive_seed(cfg.seed, "fleet/site", site as u64)),
            egress: SiteEgress::new(site),
            capacity: cfg.capacity,
            arrival_gap_mean_s: 1.0 / hz,
            remote_prob: cfg.remote_prob,
            mean_extra_life_s: extra,
            min_lifetime: cfg.min_lifetime,
            window_start: SimTime::from_nanos(cfg.duration.as_nanos() / 2),
            end: SimTime::from_nanos(cfg.duration.as_nanos()),
            active_sessions: 0,
            attached: 0,
            next_session: 0,
            sessions: BTreeMap::new(),
            join_ms: Percentiles::new(),
            arrivals: 0,
            admitted_sessions: 0,
            rejected_sessions: 0,
            admitted_participants: 0,
            rejected_participants: 0,
            released_participants: 0,
            departed_sessions: 0,
            admitted_in_window: 0,
            samples: Vec::new(),
            peak_sessions: 0,
            peak_participants: 0,
        }
    }

    /// Last-mile access round trip for one participant, in ms: a short
    /// base plus a heavy-ish exponential tail, clamped to keep the
    /// percentiles about signaling, not pathological outliers.
    fn access_rtt_ms(&mut self) -> f64 {
        (6.0 + self.rng.exponential(18.0)).min(250.0)
    }

    fn note_peaks(&mut self) {
        self.peak_sessions = self.peak_sessions.max(self.active_sessions);
        self.peak_participants = self.peak_participants.max(self.attached);
    }

    fn attach_local(&mut self, count: u32) {
        self.attached += count;
        self.admitted_participants += count as u64;
        self.note_peaks();
    }

    fn release(&mut self, count: u32) {
        sanitizer::check(self.attached >= count, "fleet/participant_conservation", || {
            format!(
                "site {} releasing {count} of {} attached",
                self.label, self.attached
            )
        });
        self.attached = self.attached.saturating_sub(count);
        self.released_participants += count as u64;
    }

    /// Process one session arrival. Returns the next arrival time and,
    /// when the session was admitted, its departure `(session, at)`.
    fn on_arrival(
        &mut self,
        at: SimTime,
        n_sites: u32,
        matrix: &LinkMatrix,
        out: &mut Vec<Envelope<FleetMsg>>,
    ) -> (SimTime, Option<(u64, SimTime)>) {
        self.arrivals += 1;

        // Draw the whole roster before the admission verdict so the RNG
        // stream is consumed identically on accept and reject.
        let group = 2 + self.rng.index(7) as u32; // 2..=8 users
        let mut local = 1u32; // the initiator is always local
        let mut local_access = vec![self.access_rtt_ms()];
        let mut remote: Vec<(u32, u32, Option<bool>)> = Vec::new();
        for _ in 1..group {
            if self.rng.chance(self.remote_prob) {
                // Any other site, uniformly.
                let mut dst = self.rng.index(n_sites as usize - 1) as u32;
                if dst >= self.site {
                    dst += 1;
                }
                match remote.iter_mut().find(|(s, _, _)| *s == dst) {
                    Some((_, c, _)) => *c += 1,
                    None => remote.push((dst, 1, None)),
                }
            } else {
                local += 1;
                local_access.push(self.access_rtt_ms());
            }
        }
        let lifetime = SimDuration::from_nanos(
            self.min_lifetime.as_nanos().saturating_add(
                SimDuration::from_secs_f64(self.rng.exponential(self.mean_extra_life_s)).as_nanos(),
            ),
        );
        let gap = SimDuration::from_secs_f64(
            self.rng.exponential(self.arrival_gap_mean_s).max(1e-6),
        );
        let next_arrival = at.saturating_add(gap);

        // PR 8 admission: a session slot plus participant headroom for
        // the local roster.
        let admitted = self.active_sessions < self.capacity.max_sessions
            && self.attached + local <= self.capacity.max_participants;
        if !admitted {
            self.rejected_sessions += 1;
            self.rejected_participants += group as u64;
            return (next_arrival, None);
        }

        self.admitted_sessions += 1;
        if at >= self.window_start && at <= self.end {
            self.admitted_in_window += 1;
        }
        self.active_sessions += 1;
        self.attach_local(local);
        for ms in local_access {
            self.join_ms.push(ms);
        }

        self.next_session += 1;
        let session = (self.site as u64) << 40 | self.next_session;
        for &(dst, count, _) in &remote {
            self.egress
                .send(at, dst, matrix, FleetMsg::Attach { session, count }, out);
        }
        self.sessions.insert(
            session,
            SessionRec {
                arrived_at: at,
                local,
                remote,
            },
        );
        (next_arrival, Some((session, at.saturating_add(lifetime))))
    }

    fn on_departure(
        &mut self,
        at: SimTime,
        session: u64,
        matrix: &LinkMatrix,
        out: &mut Vec<Envelope<FleetMsg>>,
    ) {
        let Some(rec) = self.sessions.remove(&session) else {
            sanitizer::report(
                "fleet/participant_conservation",
                format!("site {} departure for unknown session {session}", self.label),
            );
            return;
        };
        sanitizer::check(self.active_sessions > 0, "fleet/participant_conservation", || {
            format!("site {} departure with zero active sessions", self.label)
        });
        self.active_sessions = self.active_sessions.saturating_sub(1);
        self.departed_sessions += 1;
        self.release(rec.local);
        for (dst, count, verdict) in rec.remote {
            // Unadmitted (or still-pending) remote groups hold no slots
            // at the remote site; a late AttachAck for a departed session
            // triggers the compensating Detach below instead.
            if verdict == Some(true) {
                self.egress
                    .send(at, dst, matrix, FleetMsg::Detach { count }, out);
            }
        }
    }

    fn on_msg(
        &mut self,
        at: SimTime,
        src: u32,
        msg: FleetMsg,
        matrix: &LinkMatrix,
        out: &mut Vec<Envelope<FleetMsg>>,
    ) {
        match msg {
            FleetMsg::Attach { session, count } => {
                let admitted = self.attached + count <= self.capacity.max_participants;
                if admitted {
                    self.attach_local(count);
                } else {
                    self.rejected_participants += count as u64;
                }
                self.egress.send(
                    at,
                    src,
                    matrix,
                    FleetMsg::AttachAck {
                        session,
                        count,
                        admitted,
                    },
                    out,
                );
            }
            FleetMsg::AttachAck {
                session,
                count,
                admitted,
            } => match self.sessions.get_mut(&session) {
                Some(rec) => {
                    if let Some(group) = rec
                        .remote
                        .iter_mut()
                        .find(|(s, c, v)| *s == src && *c == count && v.is_none())
                    {
                        group.2 = Some(admitted);
                    }
                    if admitted {
                        let backbone_ms = at.since(rec.arrived_at).as_millis_f64();
                        for _ in 0..count {
                            let ms = backbone_ms + self.access_rtt_ms();
                            self.join_ms.push(ms);
                        }
                    }
                }
                None => {
                    // Session already departed (only possible when a
                    // lifetime undercuts the backbone RTT); give the slots
                    // back rather than leaking them.
                    if admitted {
                        self.egress
                            .send(at, src, matrix, FleetMsg::Detach { count }, out);
                    }
                }
            },
            FleetMsg::Detach { count } => self.release(count),
        }
    }

    fn on_sample(&mut self, at: SimTime) {
        sanitizer::check(
            self.attached as u64 + self.released_participants == self.admitted_participants,
            "fleet/participant_conservation",
            || {
                format!(
                    "site {}: attached {} + released {} != admitted {}",
                    self.label, self.attached, self.released_participants, self.admitted_participants
                )
            },
        );
        sanitizer::check(
            self.attached <= self.capacity.max_participants
                && self.active_sessions <= self.capacity.max_sessions,
            "fleet/participant_conservation",
            || {
                format!(
                    "site {} over envelope: {} sessions / {} participants",
                    self.label, self.active_sessions, self.attached
                )
            },
        );
        self.samples.push((
            at.as_nanos() / 1_000_000_000,
            self.active_sessions,
            self.attached,
        ));
    }

    fn into_report(mut self) -> SiteReport {
        let (join_p50_ms, join_p99_ms) = if self.join_ms.is_empty() {
            (0.0, 0.0)
        } else {
            (self.join_ms.percentile(50.0), self.join_ms.percentile(99.0))
        };
        SiteReport {
            label: self.label,
            arrivals: self.arrivals,
            admitted_sessions: self.admitted_sessions,
            rejected_sessions: self.rejected_sessions,
            admitted_participants: self.admitted_participants,
            rejected_participants: self.rejected_participants,
            departed_sessions: self.departed_sessions,
            admitted_in_window: self.admitted_in_window,
            peak_sessions: self.peak_sessions,
            peak_participants: self.peak_participants,
            join_p50_ms,
            join_p99_ms,
            join_samples: self.join_ms.samples().to_vec(),
            samples: self.samples,
        }
    }
}

/// One shard: a subset of sites plus a private event queue.
pub struct FleetShard {
    cells: Vec<SiteCell>,
    /// Global site index → local cell index (`usize::MAX` = foreign).
    local_of: Vec<usize>,
    matrix: LinkMatrix,
    n_sites: u32,
    queue: EventQueue<FleetEvent>,
    scratch: ScratchBatch<FleetEvent>,
    ingress: ShardIngress<FleetMsg>,
    end: SimTime,
}

impl FleetShard {
    fn new(cfg: &FleetConfig, matrix: LinkMatrix, my_sites: &[u32], n_sites: u32) -> Self {
        let sites = cfg.registry.sites();
        let mut local_of = vec![usize::MAX; n_sites as usize];
        let mut cells = Vec::with_capacity(my_sites.len());
        let mut queue = EventQueue::new();
        for (local, &site) in my_sites.iter().enumerate() {
            local_of[site as usize] = local;
            let mut cell = SiteCell::new(site, sites[site as usize].label, cfg);
            // Every site starts its arrival process and its once-a-second
            // occupancy sampler. The first arrival gap comes from the
            // site's own stream, like every later one.
            let first_gap = SimDuration::from_secs_f64(
                cell.rng.exponential(cell.arrival_gap_mean_s).max(1e-6),
            );
            queue.schedule(
                SimTime::ZERO.saturating_add(first_gap),
                FleetEvent::Arrival { site },
            );
            queue.schedule(SimTime::ZERO, FleetEvent::Sample { site });
            cells.push(cell);
        }
        FleetShard {
            cells,
            local_of,
            matrix,
            n_sites,
            queue,
            scratch: ScratchBatch::new(),
            ingress: ShardIngress::new(),
            end: SimTime::from_nanos(cfg.duration.as_nanos()),
        }
    }

    fn handle(&mut self, at: SimTime, ev: FleetEvent, out: &mut Vec<Envelope<FleetMsg>>) {
        match ev {
            FleetEvent::Arrival { site } => {
                let local = self.local_of[site as usize];
                let (next_arrival, departure) =
                    self.cells[local].on_arrival(at, self.n_sites, &self.matrix, out);
                if next_arrival <= self.end {
                    self.queue
                        .schedule(next_arrival, FleetEvent::Arrival { site });
                }
                if let Some((session, dep_at)) = departure {
                    self.queue
                        .schedule(dep_at, FleetEvent::Departure { site, session });
                }
            }
            FleetEvent::Departure { site, session } => {
                let local = self.local_of[site as usize];
                self.cells[local].on_departure(at, session, &self.matrix, out);
            }
            FleetEvent::Sample { site } => {
                let local = self.local_of[site as usize];
                self.cells[local].on_sample(at);
                let next = at.saturating_add(SimDuration::from_secs(1));
                if next <= self.end {
                    self.queue.schedule(next, FleetEvent::Sample { site });
                }
            }
            FleetEvent::Msg { src, dst, msg } => {
                let local = self.local_of[dst as usize];
                self.cells[local].on_msg(at, src, msg, &self.matrix, out);
            }
        }
    }
}

impl ShardWorld for FleetShard {
    type Msg = FleetMsg;

    fn next_event(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    fn deliver(&mut self, env: Envelope<FleetMsg>) {
        self.ingress.accept(env);
    }

    fn advance(&mut self, horizon: SimTime, out: &mut Vec<Envelope<FleetMsg>>) {
        for env in self.ingress.drain_sorted() {
            self.queue.schedule(
                env.deliver_at,
                FleetEvent::Msg {
                    src: env.src_site,
                    dst: env.dst_site,
                    msg: env.msg,
                },
            );
        }
        while self.queue.drain_due_into(horizon, &mut self.scratch) > 0 {
            for k in 0..self.scratch.len() {
                let at = self.scratch.at(k);
                let ev = self.scratch.payload(k).clone();
                self.handle(at, ev, out);
            }
        }
    }
}

/// Per-site results, in global site order.
#[derive(Clone, Debug)]
pub struct SiteReport {
    pub label: &'static str,
    pub arrivals: u64,
    pub admitted_sessions: u64,
    pub rejected_sessions: u64,
    pub admitted_participants: u64,
    pub rejected_participants: u64,
    pub departed_sessions: u64,
    /// Sessions admitted during the steady-state window
    /// `[duration/2, duration]`.
    pub admitted_in_window: u64,
    pub peak_sessions: u32,
    pub peak_participants: u32,
    pub join_p50_ms: f64,
    pub join_p99_ms: f64,
    /// Raw per-participant join latencies (ms), for fleet-wide percentiles.
    pub join_samples: Vec<f64>,
    /// Once-a-second occupancy: (second, active sessions, participants).
    pub samples: Vec<(u64, u32, u32)>,
}

/// What one fleet run produced.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    pub sites: Vec<SiteReport>,
    /// Barrier rounds the engine stepped.
    pub rounds: u64,
    /// Cross-site envelopes exchanged.
    pub messages: u64,
    /// The lookahead used (min backbone one-way latency).
    pub lookahead: SimDuration,
    pub duration: SimDuration,
}

impl FleetOutcome {
    /// Peak fleet-wide concurrency, from the per-second samples:
    /// `(sessions, participants)` at the busiest sampled second.
    pub fn peak_concurrency(&self) -> (u64, u64) {
        let mut by_sec: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for site in &self.sites {
            for &(sec, sessions, participants) in &site.samples {
                let e = by_sec.entry(sec).or_insert((0, 0));
                e.0 += sessions as u64;
                e.1 += participants as u64;
            }
        }
        by_sec
            .values()
            .copied()
            .max_by_key(|&(s, p)| (s, p))
            .unwrap_or((0, 0))
    }

    /// Steady-state admitted-session throughput over the second half of
    /// the run, in sessions per *simulated* second (deterministic; the
    /// wall-clock figure lives in BENCH.json, not in artifacts).
    pub fn steady_sessions_per_sec(&self) -> f64 {
        let window_s = self.duration.as_secs_f64() / 2.0;
        if window_s <= 0.0 {
            return 0.0;
        }
        let admitted: u64 = self.sites.iter().map(|s| s.admitted_in_window).sum();
        admitted as f64 / window_s
    }
}

/// Partition the sites round-robin over `n_shards` shards, run the
/// conservative engine to `cfg.duration`, and collect per-site reports
/// in global site order (independent of the partition).
pub fn run_fleet(cfg: &FleetConfig, n_shards: usize) -> FleetOutcome {
    let sites = cfg.registry.sites();
    let n = sites.len();
    assert!(n > 1, "a fleet needs at least two sites");
    let n_shards = n_shards.clamp(1, n);
    let model = LatencyModel::default();
    let matrix = LinkMatrix::from_fn(n, |a, b| {
        model.one_way(&sites[a].location(), &sites[b].location())
    });
    let lookahead = matrix.min_latency();

    let site_shard: Vec<usize> = (0..n).map(|s| s % n_shards).collect();
    let worlds: Vec<FleetShard> = (0..n_shards)
        .map(|sh| {
            let mine: Vec<u32> = (0..n as u32)
                .filter(|&s| site_shard[s as usize] == sh)
                .collect();
            FleetShard::new(cfg, matrix.clone(), &mine, n as u32)
        })
        .collect();

    let mut engine = ConservativeEngine::new(worlds, site_shard.clone(), lookahead);
    let report = engine.run_until(SimTime::from_nanos(cfg.duration.as_nanos()));

    // Reassemble per-site reports in global site order regardless of how
    // the partition scattered them.
    let mut slots: Vec<Option<SiteReport>> = (0..n).map(|_| None).collect();
    for world in engine.into_worlds() {
        let local_of = world.local_of.clone();
        let mut cells: Vec<Option<SiteCell>> = world.cells.into_iter().map(Some).collect();
        for (site, &local) in local_of.iter().enumerate() {
            if local != usize::MAX {
                let cell = cells[local].take().expect("cell taken once");
                slots[site] = Some(cell.into_report());
            }
        }
    }
    let sites = slots
        .into_iter()
        .map(|s| s.expect("every site assigned to exactly one shard"))
        .collect();

    FleetOutcome {
        sites,
        rounds: report.rounds,
        messages: report.messages,
        lookahead,
        duration: cfg.duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_core::par;

    /// Digest of everything observable in an outcome (ignores nothing
    /// but float formatting noise — values print with full precision).
    fn digest(out: &FleetOutcome) -> String {
        let mut s = String::new();
        for site in &out.sites {
            s.push_str(&format!(
                "{} a{} as{} rs{} ap{} rp{} dp{} w{} ps{} pp{} p50{:.6} p99{:.6} n{}\n",
                site.label,
                site.arrivals,
                site.admitted_sessions,
                site.rejected_sessions,
                site.admitted_participants,
                site.rejected_participants,
                site.departed_sessions,
                site.admitted_in_window,
                site.peak_sessions,
                site.peak_participants,
                site.join_p50_ms,
                site.join_p99_ms,
                site.join_samples.len(),
            ));
            for &(sec, a, p) in &site.samples {
                s.push_str(&format!("  {sec}:{a}/{p}\n"));
            }
        }
        s.push_str(&format!("rounds {} msgs {}\n", out.rounds, out.messages));
        s
    }

    #[test]
    fn smoke_fleet_runs_and_conserves_participants() {
        sanitizer::force(Some(true));
        sanitizer::reset();
        let out = run_fleet(&FleetConfig::smoke(11), 4);
        assert_eq!(
            sanitizer::total(),
            0,
            "conservation identities failed: {:?}",
            sanitizer::take()
        );
        sanitizer::force(None);
        sanitizer::reset();

        let arrivals: u64 = out.sites.iter().map(|s| s.arrivals).sum();
        assert!(arrivals > 100, "smoke fleet saw only {arrivals} arrivals");
        assert!(out.rounds > 0);
        assert!(out.messages > 0, "remote attaches must cross the backbone");
        let (peak_sessions, peak_participants) = out.peak_concurrency();
        assert!(peak_sessions > 0);
        assert!(peak_participants >= peak_sessions * 2, "groups are >= 2 users");
        // The regional capacity envelope (64 sessions) must bind at the
        // hot sites, exercising rejection.
        assert!(
            out.sites.iter().any(|s| s.rejected_sessions > 0),
            "smoke config is meant to overrun the regional envelope"
        );
        assert!(out.steady_sessions_per_sec() > 0.0);
    }

    #[test]
    fn fleet_outcome_is_invariant_across_shard_and_thread_counts() {
        let _guard = par::override_guard();
        par::set_threads(Some(1));
        let baseline = digest(&run_fleet(&FleetConfig::smoke(7), 1));
        for shards in [2usize, 5, 16] {
            for threads in [1usize, 4, 8] {
                par::set_threads(Some(threads));
                let d = digest(&run_fleet(&FleetConfig::smoke(7), shards));
                assert_eq!(
                    d, baseline,
                    "{shards} shards x {threads} threads diverged"
                );
            }
        }
        par::set_threads(None);
    }

    #[test]
    fn join_latency_includes_backbone_for_remote_members() {
        // With remote attaches forced on, p99 join latency must reflect
        // at least one backbone round trip above the pure-access baseline.
        let mut cfg = FleetConfig::smoke(3);
        cfg.remote_prob = 0.9;
        let remote_heavy = run_fleet(&cfg, 2);
        cfg.remote_prob = 0.0;
        let local_only = run_fleet(&cfg, 2);
        let p99 = |o: &FleetOutcome| {
            let mut all = Percentiles::from_samples(
                o.sites.iter().flat_map(|s| s.join_samples.clone()).collect(),
            );
            all.percentile(99.0)
        };
        assert!(
            p99(&remote_heavy) > p99(&local_only),
            "backbone RTTs must be visible in the join-latency tail"
        );
        assert_eq!(local_only.messages, 0, "no remote members, no backbone traffic");
    }
}

