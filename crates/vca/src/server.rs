//! SFU servers and assignment policies.
//!
//! §4.1's central infrastructure finding: every platform assigns the
//! session to the single server *closest to the initiating user*,
//! regardless of where the other participants are — which is what produces
//! Table 1's ~80 ms worst-case rows. The paper proposes geo-distributed
//! serving (each client attaches to a nearby server, servers interconnect
//! over a fast private backbone) as the fix; both policies are implemented
//! so the ablation can quantify the difference.

use std::collections::BTreeMap;
use std::sync::OnceLock;
use visionsim_core::metrics::{self, Class};
use visionsim_core::rng::SimRng;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::trace::{self, TraceKind};
use visionsim_geo::coords::GeoPoint;
use visionsim_geo::sites::{Provider, ServerSite, SiteCapacity, SiteRegistry};
use visionsim_net::probe::{HealthConfig, HealthMonitor, ProbeOutcome, SiteHealth};

/// How a session picks its server(s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignmentPolicy {
    /// One server: the provider site nearest the initiator (measured
    /// behaviour).
    NearestToInitiator,
    /// Each client attaches to its nearest site; sites relay over a
    /// private backbone (the paper's proposed improvement).
    GeoDistributed,
}

/// The outcome of assignment: which site each participant attaches to.
#[derive(Clone, Debug)]
pub struct ServerAssignment {
    /// Policy used.
    pub policy: AssignmentPolicy,
    /// Attachment site per participant (same order as the input).
    pub attachments: Vec<ServerSite>,
}

impl ServerAssignment {
    /// Assign servers for a session. `locations[0]` is the initiator.
    /// Equivalent to [`ServerAssignment::assign_with_salt`] with salt 0
    /// (the geographically nearest site wins outright).
    pub fn assign(
        policy: AssignmentPolicy,
        registry: &SiteRegistry,
        provider: Provider,
        locations: &[GeoPoint],
    ) -> Self {
        Self::assign_with_salt(policy, registry, provider, locations, 0)
    }

    /// Assign servers with a per-session salt. The paper observes that the
    /// assigned server is always *in the initiator's nearest region* —
    /// e.g. an Eastern initiator always lands in the Eastern US — but it
    /// found two distinct Middle-US FaceTime servers, so within a region
    /// the provider load-balances. The salt selects among the same-region
    /// candidates; salt 0 picks the strictly nearest.
    pub fn assign_with_salt(
        policy: AssignmentPolicy,
        registry: &SiteRegistry,
        provider: Provider,
        locations: &[GeoPoint],
        salt: u64,
    ) -> Self {
        assert!(!locations.is_empty(), "session needs participants");
        let attachments = match policy {
            AssignmentPolicy::NearestToInitiator => {
                let nearest = registry
                    .nearest(provider, &locations[0])
                    .expect("provider has at least one site");
                let mut candidates: Vec<ServerSite> = registry
                    .for_provider(provider)
                    .into_iter()
                    .filter(|s| s.region() == nearest.region())
                    .collect();
                // Deterministic order: nearest first, then registry order.
                candidates.sort_by(|a, b| {
                    let da = a.location().distance_km(&locations[0]);
                    let db = b.location().distance_km(&locations[0]);
                    da.partial_cmp(&db).expect("finite distances")
                });
                let site = candidates[(salt as usize) % candidates.len()];
                vec![site; locations.len()]
            }
            AssignmentPolicy::GeoDistributed => locations
                .iter()
                .map(|loc| {
                    registry
                        .nearest(provider, loc)
                        .expect("provider has at least one site")
                })
                .collect(),
        };
        ServerAssignment {
            policy,
            attachments,
        }
    }

    /// Distinct sites in use.
    pub fn distinct_sites(&self) -> Vec<ServerSite> {
        let mut sites: Vec<ServerSite> = Vec::new();
        for s in &self.attachments {
            if !sites
                .iter()
                .any(|t| t.label == s.label && t.provider == s.provider)
            {
                sites.push(*s);
            }
        }
        sites
    }

    /// Worst-case client→attachment distance, km — the headline cost of a
    /// placement policy.
    pub fn worst_attachment_km(&self, locations: &[GeoPoint]) -> f64 {
        self.attachments
            .iter()
            .zip(locations)
            .map(|(s, l)| s.location().distance_km(l))
            .fold(0.0, f64::max)
    }
}

/// Pick the failover target after a server-down event: the next-nearest
/// provider site to `anchor` (the session initiator) whose label is not in
/// `dead`. Returns `None` when every site of the provider is down —
/// the session then has nowhere to reconnect and stays dark.
pub fn failover_site(
    registry: &SiteRegistry,
    provider: Provider,
    anchor: &GeoPoint,
    dead: &[&str],
) -> Option<ServerSite> {
    let mut candidates: Vec<ServerSite> = registry
        .for_provider(provider)
        .into_iter()
        .filter(|s| !dead.contains(&s.label))
        .collect();
    candidates.sort_by(|a, b| {
        let da = a.location().distance_km(anchor);
        let db = b.location().distance_km(anchor);
        da.partial_cmp(&db)
            .expect("finite distances")
            .then_with(|| a.label.cmp(b.label))
    });
    candidates.first().copied()
}

/// Cached metrics handles for the resilience layer. All [`Class::Sim`]:
/// derived purely from seeded simulation state.
pub struct ResilienceMetrics {
    /// Join/rejoin attempts a site refused.
    pub admission_rejects: metrics::Counter,
    /// Reconnect attempts fired (admitted or not).
    pub reconnect_attempts: metrics::Counter,
    /// Circuit breakers tripped open.
    pub breaker_opens: metrics::Counter,
    /// Open breakers whose timer elapsed into half-open.
    pub breaker_half_opens: metrics::Counter,
    /// Half-open breakers closed by a successful attempt.
    pub breaker_closes: metrics::Counter,
    /// Participants that exhausted their rejoin budget.
    pub reconnects_abandoned: metrics::Counter,
    /// Rejoin latency (site death → reattached), milliseconds.
    pub rejoin_ms: metrics::Histogram,
}

/// The registry handles for the resilience layer (shared by the session
/// engine and the storm scenarios).
pub fn resilience_metrics() -> &'static ResilienceMetrics {
    static M: OnceLock<ResilienceMetrics> = OnceLock::new();
    M.get_or_init(|| ResilienceMetrics {
        admission_rejects: metrics::counter("vca/admission_rejects", Class::Sim),
        reconnect_attempts: metrics::counter("vca/reconnect_attempts", Class::Sim),
        breaker_opens: metrics::counter("vca/breaker_opens", Class::Sim),
        breaker_half_opens: metrics::counter("vca/breaker_half_opens", Class::Sim),
        breaker_closes: metrics::counter("vca/breaker_closes", Class::Sim),
        reconnects_abandoned: metrics::counter("vca/reconnects_abandoned", Class::Sim),
        rejoin_ms: metrics::histogram("vca/rejoin_ms", Class::Sim),
    })
}

// ---------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------

/// Breaker thresholds and timers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failed attempts before the breaker opens.
    pub failure_threshold: u32,
    /// How long an open breaker blocks before half-opening. The timer is
    /// deterministic sim time — no wall clock anywhere.
    pub open_for: SimDuration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_for: SimDuration::from_secs(5),
        }
    }
}

/// Breaker state: Closed (attempts flow), Open (attempts blocked until
/// the deadline), HalfOpen (one trial attempt decides).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Attempts flow; consecutive failures are counted.
    Closed,
    /// Attempts are refused until `until`.
    Open {
        /// Deterministic half-open deadline.
        until: SimTime,
    },
    /// The timer elapsed; the next attempt is a trial.
    HalfOpen,
}

/// Per-site circuit breaker over reconnect attempts.
#[derive(Clone, Copy, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opens: u32,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opens: 0,
        }
    }

    /// Current state after advancing the open→half-open timer to `now`.
    /// Returns `(state, half_opened_now)`.
    pub fn poll(&mut self, now: SimTime) -> (BreakerState, bool) {
        if let BreakerState::Open { until } = self.state {
            if now >= until {
                self.state = BreakerState::HalfOpen;
                return (self.state, true);
            }
        }
        (self.state, false)
    }

    /// Whether an attempt may be fired at `now` (advances the timer).
    pub fn allows(&mut self, now: SimTime) -> bool {
        !matches!(self.poll(now).0, BreakerState::Open { .. })
    }

    /// Record a failed attempt; returns true when this failure opened the
    /// breaker.
    pub fn on_failure(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::HalfOpen => {
                // The trial failed: straight back to Open.
                self.state = BreakerState::Open {
                    until: now + self.cfg.open_for,
                };
                self.opens += 1;
                true
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open {
                        until: now + self.cfg.open_for,
                    };
                    self.opens += 1;
                    true
                } else {
                    false
                }
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// Record a successful attempt; returns true when this success closed
    /// a half-open breaker.
    pub fn on_success(&mut self) -> bool {
        let was_half_open = self.state == BreakerState::HalfOpen;
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        was_half_open
    }

    /// Times this breaker has opened.
    pub fn opens(&self) -> u32 {
        self.opens
    }
}

// ---------------------------------------------------------------------
// Reconnect state machine
// ---------------------------------------------------------------------

/// Capped exponential backoff with deterministic seeded jitter.
#[derive(Clone, Copy, Debug)]
pub struct BackoffPolicy {
    /// First retry delay.
    pub base: SimDuration,
    /// Exponential growth stops here.
    pub cap: SimDuration,
    /// Multiplicative jitter half-width: the delay is scaled by a uniform
    /// draw in `[1 - jitter_frac, 1 + jitter_frac]`. Jitter comes from a
    /// per-participant [`SimRng`], so sequences are byte-identical at any
    /// thread count.
    pub jitter_frac: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: SimDuration::from_millis(500),
            cap: SimDuration::from_secs(8),
            jitter_frac: 0.2,
        }
    }
}

impl BackoffPolicy {
    /// Delay before retry number `attempt` (0-based: the delay after the
    /// first failed attempt is `delay(0)`).
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let doubled = self
            .base
            .as_nanos()
            .saturating_mul(1u64.checked_shl(attempt.min(32)).unwrap_or(u64::MAX));
        let capped = doubled.min(self.cap.as_nanos());
        let scale = 1.0 + self.jitter_frac * (rng.uniform() * 2.0 - 1.0);
        SimDuration::from_nanos(capped).mul_f64(scale.max(0.0))
    }
}

/// Where a reconnecting participant is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReconnectPhase {
    /// Waiting for the next scheduled attempt.
    Waiting {
        /// When the next attempt fires.
        next_attempt: SimTime,
    },
    /// Back on a live site.
    Reattached {
        /// When the admission succeeded.
        at: SimTime,
    },
    /// The rejoin budget ran out; the participant gave up.
    Abandoned {
        /// When the budget expired.
        at: SimTime,
    },
}

/// What the participant renders while waiting to rejoin: the graceful
/// ladder spatial → 2D → audio-only, keyed on how long the wait has been.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum WaitMode {
    /// Short gap: the last spatial frame stays frozen on screen.
    FrozenSpatial,
    /// Medium gap: drop to the 2D persona tile.
    TwoD,
    /// Long gap: audio-only placeholder.
    AudioOnly,
}

/// Wait shorter than this renders the frozen spatial frame.
pub const WAIT_FROZEN_SPATIAL: SimDuration = SimDuration::from_secs(2);
/// Wait shorter than this (and past the frozen window) renders 2D.
pub const WAIT_TWO_D: SimDuration = SimDuration::from_secs(6);

/// Per-participant reconnect state machine. All scheduling is sim time;
/// the jitter RNG is seeded from `(seed, participant)`, so a reconnect
/// storm replays byte-identically at any thread count.
#[derive(Clone, Debug)]
pub struct Reconnector {
    participant: u64,
    down_at: SimTime,
    budget: SimDuration,
    policy: BackoffPolicy,
    rng: SimRng,
    attempts: u32,
    rejected: u32,
    phase: ReconnectPhase,
}

impl Reconnector {
    /// Start reconnecting `participant` whose site died at `down_at`; the
    /// first attempt fires at `first_attempt` (detection + reconnect
    /// setup lag), later ones follow the backoff policy.
    pub fn new(
        participant: u64,
        down_at: SimTime,
        first_attempt: SimTime,
        policy: BackoffPolicy,
        budget: SimDuration,
        seed: u64,
    ) -> Self {
        Reconnector {
            participant,
            down_at,
            budget,
            policy,
            rng: SimRng::seed_from_u64(visionsim_core::par::derive_seed(
                seed,
                "reconnect",
                participant,
            )),
            attempts: 0,
            rejected: 0,
            phase: ReconnectPhase::Waiting {
                next_attempt: first_attempt,
            },
        }
    }

    /// The participant index this machine drives.
    pub fn participant(&self) -> u64 {
        self.participant
    }

    /// When the driven site died.
    pub fn down_at(&self) -> SimTime {
        self.down_at
    }

    /// Current phase.
    pub fn phase(&self) -> ReconnectPhase {
        self.phase
    }

    /// Attempts fired so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Attempts refused (admission reject or no candidate).
    pub fn rejected(&self) -> u32 {
        self.rejected
    }

    /// True when an attempt should fire at `now`.
    pub fn due(&self, now: SimTime) -> bool {
        matches!(self.phase, ReconnectPhase::Waiting { next_attempt } if now >= next_attempt)
    }

    /// Consume the due attempt; returns the 1-based attempt number.
    pub fn take_attempt(&mut self) -> u32 {
        self.attempts += 1;
        self.attempts
    }

    /// The attempt was refused (or found no candidate): schedule the next
    /// one per backoff, or abandon when the budget is spent.
    pub fn on_rejected(&mut self, now: SimTime) {
        self.rejected += 1;
        if now.since(self.down_at) >= self.budget {
            self.phase = ReconnectPhase::Abandoned { at: now };
            return;
        }
        let delay = self.policy.delay(self.attempts.saturating_sub(1), &mut self.rng);
        self.phase = ReconnectPhase::Waiting {
            next_attempt: now + delay,
        };
    }

    /// The attempt was admitted: the participant is back.
    pub fn on_admitted(&mut self, now: SimTime) {
        self.phase = ReconnectPhase::Reattached { at: now };
    }

    /// Rejoin latency, once reattached.
    pub fn rejoin_latency(&self) -> Option<SimDuration> {
        match self.phase {
            ReconnectPhase::Reattached { at } => Some(at.since(self.down_at)),
            _ => None,
        }
    }

    /// What the participant renders at `now` while disconnected: frozen
    /// spatial frame → 2D tile → audio-only, by wait duration.
    pub fn wait_mode(&self, now: SimTime) -> WaitMode {
        let waited = now.since(self.down_at);
        if waited < WAIT_FROZEN_SPATIAL {
            WaitMode::FrozenSpatial
        } else if waited < WAIT_TWO_D {
            WaitMode::TwoD
        } else {
            WaitMode::AudioOnly
        }
    }
}

// ---------------------------------------------------------------------
// Admission + site directory
// ---------------------------------------------------------------------

/// Why a site refused a join.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Participant envelope full (or degraded-mode soft limit reached).
    Capacity,
    /// Session envelope full (new conference groups refused).
    Sessions,
    /// The site is down or observed unusable.
    Health,
}

impl RejectReason {
    /// Trace operand encoding.
    pub fn code(self) -> u64 {
        match self {
            RejectReason::Capacity => 0,
            RejectReason::Sessions => 1,
            RejectReason::Health => 2,
        }
    }
}

/// Outcome of one admission request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// The participant is attached.
    Admitted,
    /// Refused, with the reason.
    Rejected(RejectReason),
}

/// Tuning knobs of the resilience layer (health cadence, backoff,
/// breaker, capacity override, rejoin budget).
#[derive(Clone, Copy, Debug)]
pub struct ResilienceConfig {
    /// Retry backoff.
    pub backoff: BackoffPolicy,
    /// Give up reconnecting after this long disconnected.
    pub rejoin_budget: SimDuration,
    /// Health-probe cadence against every site.
    pub probe_every: SimDuration,
    /// Health state-machine thresholds.
    pub health: HealthConfig,
    /// Per-site breaker thresholds.
    pub breaker: BreakerConfig,
    /// Capacity applied to every site (None → [`SiteCapacity::default`]).
    pub capacity: Option<SiteCapacity>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            backoff: BackoffPolicy::default(),
            rejoin_budget: SimDuration::from_secs(30),
            probe_every: SimDuration::from_millis(500),
            health: HealthConfig::default(),
            breaker: BreakerConfig::default(),
            capacity: None,
        }
    }
}

/// Runtime status of one site inside a [`SiteDirectory`].
#[derive(Clone, Debug)]
struct SiteStatus {
    site: ServerSite,
    capacity: SiteCapacity,
    /// Ground truth: is the site actually serving?
    up: bool,
    /// The probe-lagged observed view.
    monitor: HealthMonitor,
    breaker: CircuitBreaker,
    attached: u32,
    /// Members per hosted session id (BTreeMap: deterministic iteration).
    sessions: BTreeMap<u64, u32>,
    rejects: u64,
}

/// Control-plane directory over one provider's fleet: ground-truth
/// up/down per site, a probe-driven [`HealthMonitor`], a per-site
/// [`CircuitBreaker`], capacity-gated admission, and candidate selection
/// that never hands out a site observed Down or breaker-open.
///
/// Trace events ([`TraceKind::AdmissionReject`], breaker transitions) and
/// the [`resilience_metrics`] counters are emitted here, so the session
/// engine and the storm scenarios report identically.
#[derive(Clone, Debug)]
pub struct SiteDirectory {
    provider: Provider,
    registry: SiteRegistry,
    sites: Vec<SiteStatus>,
    cfg: ResilienceConfig,
}

impl SiteDirectory {
    /// A directory over `registry`'s sites for `provider`, all up and
    /// empty.
    pub fn new(registry: &SiteRegistry, provider: Provider, cfg: ResilienceConfig) -> Self {
        let sites = registry
            .for_provider(provider)
            .into_iter()
            .map(|site| SiteStatus {
                site,
                capacity: cfg.capacity.unwrap_or_default(),
                up: true,
                monitor: HealthMonitor::new(cfg.health),
                breaker: CircuitBreaker::new(cfg.breaker),
                attached: 0,
                sessions: BTreeMap::new(),
                rejects: 0,
            })
            .collect();
        SiteDirectory {
            provider,
            registry: registry.clone(),
            sites,
            cfg,
        }
    }

    fn idx(&self, label: &str) -> Option<usize> {
        self.sites.iter().position(|s| s.site.label == label)
    }

    /// Flip a site's ground truth. Participants attached there are the
    /// caller's to detach; the monitor only notices at the next probe.
    pub fn set_site_up(&mut self, label: &str, up: bool) {
        if let Some(i) = self.idx(label) {
            self.sites[i].up = up;
        }
    }

    /// Ground truth for `label`.
    pub fn is_up(&self, label: &str) -> bool {
        self.idx(label).map(|i| self.sites[i].up).unwrap_or(false)
    }

    /// Observed health for `label` (probe-lagged).
    pub fn health(&self, label: &str) -> SiteHealth {
        self.idx(label)
            .map(|i| self.sites[i].monitor.state())
            .unwrap_or(SiteHealth::Down)
    }

    /// Participants attached to `label`.
    pub fn attached(&self, label: &str) -> u32 {
        self.idx(label).map(|i| self.sites[i].attached).unwrap_or(0)
    }

    /// Admissions `label` has refused.
    pub fn rejects(&self, label: &str) -> u64 {
        self.idx(label).map(|i| self.sites[i].rejects).unwrap_or(0)
    }

    /// Times `label`'s breaker has opened.
    pub fn breaker_opens(&self, label: &str) -> u32 {
        self.idx(label)
            .map(|i| self.sites[i].breaker.opens())
            .unwrap_or(0)
    }

    /// Total breaker opens across the fleet.
    pub fn total_breaker_opens(&self) -> u32 {
        self.sites.iter().map(|s| s.breaker.opens()).sum()
    }

    /// Total admission rejects across the fleet.
    pub fn total_rejects(&self) -> u64 {
        self.sites.iter().map(|s| s.rejects).sum()
    }

    /// Site labels in registry order (stable reporting order).
    pub fn labels(&self) -> Vec<&'static str> {
        self.sites.iter().map(|s| s.site.label).collect()
    }

    /// Run one probe round against every site, advancing each monitor.
    /// Probe outcomes derive from ground truth: down → Lost; up but past
    /// the degraded admission fraction → Slow; otherwise Ok.
    pub fn probe_tick(&mut self, _now: SimTime) {
        for s in &mut self.sites {
            let outcome = if !s.up {
                ProbeOutcome::Lost
            } else if s.capacity.utilization(s.attached) >= s.capacity.degraded_admit_frac {
                ProbeOutcome::Slow
            } else {
                ProbeOutcome::Ok
            };
            s.monitor.on_probe(outcome);
        }
    }

    /// Pick the best reattach target near `anchor`: the next-nearest site
    /// excluding every site that died (`dead`), is observed Down, or has
    /// an open breaker (after advancing breaker timers to `now` — an
    /// elapsed open timer half-opens here and readmits the site as a
    /// trial). Delegates the distance ordering to [`failover_site`].
    pub fn candidate(
        &mut self,
        anchor: &GeoPoint,
        dead: &[&str],
        now: SimTime,
    ) -> Option<ServerSite> {
        let mut excluded: Vec<&str> = dead.to_vec();
        for i in 0..self.sites.len() {
            let label = self.sites[i].site.label;
            let (state, half_opened) = self.sites[i].breaker.poll(now);
            if half_opened {
                resilience_metrics().breaker_half_opens.inc();
                if trace::enabled() {
                    trace::record(
                        TraceKind::BreakerHalfOpen,
                        now.as_nanos(),
                        trace::intern(label),
                        0,
                        0,
                        0,
                    );
                }
            }
            let observed_down = self.sites[i].monitor.state() == SiteHealth::Down;
            let breaker_open = matches!(state, BreakerState::Open { .. });
            if (observed_down || breaker_open) && !excluded.contains(&label) {
                excluded.push(label);
            }
        }
        failover_site(&self.registry, self.provider, anchor, &excluded)
    }

    /// Ask `label` to admit `participant` into `session`. Ground-truth
    /// down sites fail the attempt (feeding the breaker — this is how
    /// repeated reconnects against a zombie site trip it); live sites
    /// apply the health + capacity admission policy. On admission the
    /// participant is attached and the breaker resets.
    pub fn try_admit(
        &mut self,
        label: &str,
        session: u64,
        participant: u64,
        now: SimTime,
    ) -> AdmissionVerdict {
        let Some(i) = self.idx(label) else {
            return AdmissionVerdict::Rejected(RejectReason::Health);
        };
        if !self.sites[i].up {
            // Connection failure, not an admission verdict: the breaker
            // counts it.
            let opened = self.sites[i].breaker.on_failure(now);
            if opened {
                resilience_metrics().breaker_opens.inc();
                if trace::enabled() {
                    let until = match self.sites[i].breaker.state {
                        BreakerState::Open { until } => until.as_nanos(),
                        _ => 0,
                    };
                    trace::record(
                        TraceKind::BreakerOpen,
                        now.as_nanos(),
                        trace::intern(self.sites[i].site.label),
                        self.sites[i].breaker.consecutive_failures as u64,
                        0,
                        until,
                    );
                }
            }
            return self.reject(i, participant, RejectReason::Health, now);
        }
        let s = &self.sites[i];
        let verdict = if s.attached >= s.capacity.max_participants {
            Some(RejectReason::Capacity)
        } else if s.monitor.state() == SiteHealth::Degraded
            && s.capacity.utilization(s.attached) >= s.capacity.degraded_admit_frac
        {
            // Utilization-dependent verdict: a hot site sheds new load
            // before it actually saturates.
            Some(RejectReason::Capacity)
        } else if !s.sessions.contains_key(&session)
            && s.sessions.len() as u32 >= s.capacity.max_sessions
        {
            Some(RejectReason::Sessions)
        } else {
            None
        };
        if let Some(reason) = verdict {
            return self.reject(i, participant, reason, now);
        }
        if self.sites[i].breaker.on_success() {
            resilience_metrics().breaker_closes.inc();
            if trace::enabled() {
                trace::record(
                    TraceKind::BreakerClose,
                    now.as_nanos(),
                    trace::intern(self.sites[i].site.label),
                    0,
                    0,
                    0,
                );
            }
        }
        self.sites[i].attached += 1;
        *self.sites[i].sessions.entry(session).or_insert(0) += 1;
        AdmissionVerdict::Admitted
    }

    fn reject(
        &mut self,
        i: usize,
        participant: u64,
        reason: RejectReason,
        now: SimTime,
    ) -> AdmissionVerdict {
        self.sites[i].rejects += 1;
        resilience_metrics().admission_rejects.inc();
        if trace::enabled() {
            trace::record(
                TraceKind::AdmissionReject,
                now.as_nanos(),
                trace::intern(self.sites[i].site.label),
                participant,
                reason.code(),
                self.sites[i].attached as u64,
            );
        }
        AdmissionVerdict::Rejected(reason)
    }

    /// Detach `participant`'s membership of `session` from `label` (e.g.
    /// its site died, or it migrated).
    pub fn detach(&mut self, label: &str, session: u64) {
        if let Some(i) = self.idx(label) {
            let s = &mut self.sites[i];
            s.attached = s.attached.saturating_sub(1);
            if let Some(members) = s.sessions.get_mut(&session) {
                *members -= 1;
                if *members == 0 {
                    s.sessions.remove(&session);
                }
            }
        }
    }

    /// The effective resilience config.
    pub fn config(&self) -> &ResilienceConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_geo::cities;

    fn loc(name: &str) -> GeoPoint {
        cities::by_name(name).unwrap().location
    }

    #[test]
    fn initiator_policy_uses_one_site_near_initiator() {
        let reg = SiteRegistry::us_fleet();
        // Eastern initiator, Western participant.
        let locs = [loc("New York, NY"), loc("San Francisco, CA")];
        let a = ServerAssignment::assign(
            AssignmentPolicy::NearestToInitiator,
            &reg,
            Provider::FaceTime,
            &locs,
        );
        assert_eq!(a.distinct_sites().len(), 1);
        assert_eq!(a.attachments[0].label, "E");
        // The Western participant eats the cross-country distance.
        assert!(a.worst_attachment_km(&locs) > 3_000.0);
    }

    #[test]
    fn initiator_location_controls_the_site() {
        let reg = SiteRegistry::us_fleet();
        // Same pair, Western initiator this time.
        let locs = [loc("San Francisco, CA"), loc("New York, NY")];
        let a = ServerAssignment::assign(
            AssignmentPolicy::NearestToInitiator,
            &reg,
            Provider::FaceTime,
            &locs,
        );
        assert_eq!(a.attachments[0].label, "W");
    }

    #[test]
    fn geo_distributed_attaches_everyone_nearby() {
        let reg = SiteRegistry::us_fleet();
        let locs = [loc("New York, NY"), loc("San Francisco, CA")];
        let a = ServerAssignment::assign(
            AssignmentPolicy::GeoDistributed,
            &reg,
            Provider::FaceTime,
            &locs,
        );
        assert_eq!(a.distinct_sites().len(), 2);
        // Nobody is more than ~500 km from their attachment.
        assert!(a.worst_attachment_km(&locs) < 500.0);
    }

    #[test]
    fn teams_single_site_gives_geo_distribution_nothing() {
        let reg = SiteRegistry::us_fleet();
        let locs = [loc("New York, NY"), loc("Miami, FL")];
        let a = ServerAssignment::assign(
            AssignmentPolicy::GeoDistributed,
            &reg,
            Provider::Teams,
            &locs,
        );
        assert_eq!(a.distinct_sites().len(), 1);
        assert_eq!(a.attachments[0].label, "W");
    }

    #[test]
    fn failover_picks_next_nearest_live_site() {
        let reg = SiteRegistry::us_fleet();
        let anchor = loc("New York, NY");
        let primary = reg.nearest(Provider::FaceTime, &anchor).unwrap();
        let backup = failover_site(&reg, Provider::FaceTime, &anchor, &[primary.label]).unwrap();
        assert_ne!(backup.label, primary.label);
        // The backup is farther than the primary but still the best of the rest.
        for s in reg.for_provider(Provider::FaceTime) {
            if s.label != primary.label {
                assert!(
                    backup.location().distance_km(&anchor)
                        <= s.location().distance_km(&anchor) + 1e-9
                );
            }
        }
    }

    #[test]
    fn failover_with_every_site_dead_is_none() {
        let reg = SiteRegistry::us_fleet();
        let anchor = loc("New York, NY");
        let all: Vec<&str> = reg
            .for_provider(Provider::FaceTime)
            .into_iter()
            .map(|s| s.label)
            .collect();
        assert!(failover_site(&reg, Provider::FaceTime, &anchor, &all).is_none());
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_on_the_timer() {
        let cfg = BreakerConfig {
            failure_threshold: 3,
            open_for: SimDuration::from_secs(5),
        };
        let mut b = CircuitBreaker::new(cfg);
        let t0 = SimTime::from_secs(1);
        assert!(b.allows(t0));
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        // Third consecutive failure trips it.
        assert!(b.on_failure(t0));
        assert_eq!(b.opens(), 1);
        assert!(!b.allows(SimTime::from_secs(3)));
        // The deterministic timer half-opens it.
        assert!(b.allows(SimTime::from_secs(6)));
        assert_eq!(b.poll(SimTime::from_secs(6)).0, BreakerState::HalfOpen);
        // A failed trial goes straight back to Open; a successful one
        // closes.
        assert!(b.on_failure(SimTime::from_secs(6)));
        assert_eq!(b.opens(), 2);
        assert!(b.allows(SimTime::from_secs(12)));
        assert!(b.on_success());
        assert!(b.allows(SimTime::from_secs(12)));
    }

    #[test]
    fn backoff_grows_caps_and_replays_identically() {
        let policy = BackoffPolicy {
            base: SimDuration::from_millis(500),
            cap: SimDuration::from_secs(8),
            jitter_frac: 0.2,
        };
        let seq = |seed: u64| -> Vec<u64> {
            let mut rng = SimRng::seed_from_u64(seed);
            (0..10).map(|a| policy.delay(a, &mut rng).as_nanos()).collect()
        };
        let a = seq(7);
        // Deterministic in the seed.
        assert_eq!(a, seq(7));
        assert_ne!(a, seq(8));
        for (attempt, &d) in a.iter().enumerate() {
            let nominal = (500_000_000u64 << attempt.min(5)).min(8_000_000_000);
            let lo = (nominal as f64 * 0.8) as u64;
            let hi = (nominal as f64 * 1.2) as u64;
            assert!(
                (lo..=hi).contains(&d),
                "attempt {attempt}: {d} outside [{lo}, {hi}]"
            );
        }
        // The cap holds even at absurd attempt counts (no shift overflow).
        let mut rng = SimRng::seed_from_u64(1);
        assert!(policy.delay(63, &mut rng).as_nanos() <= 9_600_000_000);
    }

    #[test]
    fn reconnector_abandons_when_the_budget_is_spent() {
        let mut r = Reconnector::new(
            0,
            SimTime::from_secs(0),
            SimTime::from_millis(500),
            BackoffPolicy::default(),
            SimDuration::from_secs(3),
            42,
        );
        let mut now = SimTime::from_millis(500);
        let mut guard = 0;
        while !matches!(r.phase(), ReconnectPhase::Abandoned { .. }) {
            assert!(r.due(now));
            r.take_attempt();
            r.on_rejected(now);
            if let ReconnectPhase::Waiting { next_attempt } = r.phase() {
                now = next_attempt;
            }
            guard += 1;
            assert!(guard < 50, "reconnector never abandoned");
        }
        assert!(r.attempts() >= 2);
        assert_eq!(r.rejected(), r.attempts());
        assert!(r.rejoin_latency().is_none());
    }

    #[test]
    fn wait_mode_degrades_spatial_to_2d_to_audio() {
        let r = Reconnector::new(
            0,
            SimTime::from_secs(10),
            SimTime::from_secs(11),
            BackoffPolicy::default(),
            SimDuration::from_secs(30),
            1,
        );
        assert_eq!(r.wait_mode(SimTime::from_secs(11)), WaitMode::FrozenSpatial);
        assert_eq!(r.wait_mode(SimTime::from_secs(14)), WaitMode::TwoD);
        assert_eq!(r.wait_mode(SimTime::from_secs(17)), WaitMode::AudioOnly);
    }

    fn small_directory(max_participants: u32) -> SiteDirectory {
        let cfg = ResilienceConfig {
            capacity: Some(SiteCapacity {
                max_sessions: 2,
                max_participants,
                degraded_admit_frac: 0.5,
            }),
            ..ResilienceConfig::default()
        };
        SiteDirectory::new(&SiteRegistry::us_fleet(), Provider::FaceTime, cfg)
    }

    #[test]
    fn admission_enforces_participant_and_session_envelopes() {
        let mut d = small_directory(4);
        let now = SimTime::from_secs(1);
        assert_eq!(d.try_admit("W", 0, 0, now), AdmissionVerdict::Admitted);
        assert_eq!(d.try_admit("W", 0, 1, now), AdmissionVerdict::Admitted);
        assert_eq!(d.try_admit("W", 1, 2, now), AdmissionVerdict::Admitted);
        // Third distinct session bounces off max_sessions = 2.
        assert_eq!(
            d.try_admit("W", 2, 3, now),
            AdmissionVerdict::Rejected(RejectReason::Sessions)
        );
        // An existing session may still grow to max_participants = 4…
        assert_eq!(d.try_admit("W", 0, 3, now), AdmissionVerdict::Admitted);
        // …and no further.
        assert_eq!(
            d.try_admit("W", 0, 4, now),
            AdmissionVerdict::Rejected(RejectReason::Capacity)
        );
        assert_eq!(d.attached("W"), 4);
        assert_eq!(d.rejects("W"), 2);
        // Detaching frees both envelopes.
        d.detach("W", 1);
        assert_eq!(d.try_admit("W", 2, 4, now), AdmissionVerdict::Admitted);
    }

    #[test]
    fn down_site_attempts_feed_the_breaker_and_candidates_skip_it() {
        let mut d = small_directory(16);
        let anchor = loc("San Francisco, CA");
        let now = SimTime::from_secs(1);
        // Ground truth dies; the monitor still believes Healthy (no probe
        // yet) so W remains a candidate — attempts against it fail.
        d.set_site_up("W", false);
        assert_eq!(d.candidate(&anchor, &[], now).unwrap().label, "W");
        for _ in 0..3 {
            assert_eq!(
                d.try_admit("W", 0, 0, now),
                AdmissionVerdict::Rejected(RejectReason::Health)
            );
        }
        // Three failures opened the breaker: W is no longer a candidate
        // even though the monitor never saw it die.
        assert_eq!(d.breaker_opens("W"), 1);
        assert_eq!(d.health("W"), SiteHealth::Healthy);
        assert_ne!(d.candidate(&anchor, &[], now).unwrap().label, "W");
        // Probes eventually mark it Down too.
        d.probe_tick(now);
        d.probe_tick(now);
        assert_eq!(d.health("W"), SiteHealth::Down);
        // The breaker timer elapses while the site recovers: the trial
        // attempt is allowed, succeeds, and closes the breaker.
        d.set_site_up("W", true);
        d.probe_tick(now);
        d.probe_tick(now);
        assert!(d.health("W").is_usable());
        let later = now + d.config().breaker.open_for;
        assert_eq!(d.candidate(&anchor, &[], later).unwrap().label, "W");
        assert_eq!(d.try_admit("W", 0, 0, later), AdmissionVerdict::Admitted);
        assert_eq!(d.attached("W"), 1);
    }

    #[test]
    fn degraded_site_sheds_load_at_the_soft_limit() {
        let mut d = small_directory(10);
        let now = SimTime::from_secs(1);
        // Fill to the 50% soft limit.
        for p in 0..5 {
            assert_eq!(d.try_admit("W", 0, p, now), AdmissionVerdict::Admitted);
        }
        // The next probe observes the site hot → Degraded, and admission
        // closes early even though 5 raw slots remain.
        d.probe_tick(now);
        assert_eq!(d.health("W"), SiteHealth::Degraded);
        assert_eq!(
            d.try_admit("W", 0, 6, now),
            AdmissionVerdict::Rejected(RejectReason::Capacity)
        );
    }

    #[test]
    #[should_panic(expected = "needs participants")]
    fn empty_session_is_rejected() {
        ServerAssignment::assign(
            AssignmentPolicy::NearestToInitiator,
            &SiteRegistry::us_fleet(),
            Provider::Zoom,
            &[],
        );
    }
}
