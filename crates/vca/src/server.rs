//! SFU servers and assignment policies.
//!
//! §4.1's central infrastructure finding: every platform assigns the
//! session to the single server *closest to the initiating user*,
//! regardless of where the other participants are — which is what produces
//! Table 1's ~80 ms worst-case rows. The paper proposes geo-distributed
//! serving (each client attaches to a nearby server, servers interconnect
//! over a fast private backbone) as the fix; both policies are implemented
//! so the ablation can quantify the difference.

use visionsim_geo::coords::GeoPoint;
use visionsim_geo::sites::{Provider, ServerSite, SiteRegistry};

/// How a session picks its server(s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignmentPolicy {
    /// One server: the provider site nearest the initiator (measured
    /// behaviour).
    NearestToInitiator,
    /// Each client attaches to its nearest site; sites relay over a
    /// private backbone (the paper's proposed improvement).
    GeoDistributed,
}

/// The outcome of assignment: which site each participant attaches to.
#[derive(Clone, Debug)]
pub struct ServerAssignment {
    /// Policy used.
    pub policy: AssignmentPolicy,
    /// Attachment site per participant (same order as the input).
    pub attachments: Vec<ServerSite>,
}

impl ServerAssignment {
    /// Assign servers for a session. `locations[0]` is the initiator.
    /// Equivalent to [`ServerAssignment::assign_with_salt`] with salt 0
    /// (the geographically nearest site wins outright).
    pub fn assign(
        policy: AssignmentPolicy,
        registry: &SiteRegistry,
        provider: Provider,
        locations: &[GeoPoint],
    ) -> Self {
        Self::assign_with_salt(policy, registry, provider, locations, 0)
    }

    /// Assign servers with a per-session salt. The paper observes that the
    /// assigned server is always *in the initiator's nearest region* —
    /// e.g. an Eastern initiator always lands in the Eastern US — but it
    /// found two distinct Middle-US FaceTime servers, so within a region
    /// the provider load-balances. The salt selects among the same-region
    /// candidates; salt 0 picks the strictly nearest.
    pub fn assign_with_salt(
        policy: AssignmentPolicy,
        registry: &SiteRegistry,
        provider: Provider,
        locations: &[GeoPoint],
        salt: u64,
    ) -> Self {
        assert!(!locations.is_empty(), "session needs participants");
        let attachments = match policy {
            AssignmentPolicy::NearestToInitiator => {
                let nearest = registry
                    .nearest(provider, &locations[0])
                    .expect("provider has at least one site");
                let mut candidates: Vec<ServerSite> = registry
                    .for_provider(provider)
                    .into_iter()
                    .filter(|s| s.region() == nearest.region())
                    .collect();
                // Deterministic order: nearest first, then registry order.
                candidates.sort_by(|a, b| {
                    let da = a.location().distance_km(&locations[0]);
                    let db = b.location().distance_km(&locations[0]);
                    da.partial_cmp(&db).expect("finite distances")
                });
                let site = candidates[(salt as usize) % candidates.len()];
                vec![site; locations.len()]
            }
            AssignmentPolicy::GeoDistributed => locations
                .iter()
                .map(|loc| {
                    registry
                        .nearest(provider, loc)
                        .expect("provider has at least one site")
                })
                .collect(),
        };
        ServerAssignment {
            policy,
            attachments,
        }
    }

    /// Distinct sites in use.
    pub fn distinct_sites(&self) -> Vec<ServerSite> {
        let mut sites: Vec<ServerSite> = Vec::new();
        for s in &self.attachments {
            if !sites
                .iter()
                .any(|t| t.label == s.label && t.provider == s.provider)
            {
                sites.push(*s);
            }
        }
        sites
    }

    /// Worst-case client→attachment distance, km — the headline cost of a
    /// placement policy.
    pub fn worst_attachment_km(&self, locations: &[GeoPoint]) -> f64 {
        self.attachments
            .iter()
            .zip(locations)
            .map(|(s, l)| s.location().distance_km(l))
            .fold(0.0, f64::max)
    }
}

/// Pick the failover target after a server-down event: the next-nearest
/// provider site to `anchor` (the session initiator) whose label is not in
/// `dead`. Returns `None` when every site of the provider is down —
/// the session then has nowhere to reconnect and stays dark.
pub fn failover_site(
    registry: &SiteRegistry,
    provider: Provider,
    anchor: &GeoPoint,
    dead: &[&str],
) -> Option<ServerSite> {
    let mut candidates: Vec<ServerSite> = registry
        .for_provider(provider)
        .into_iter()
        .filter(|s| !dead.contains(&s.label))
        .collect();
    candidates.sort_by(|a, b| {
        let da = a.location().distance_km(anchor);
        let db = b.location().distance_km(anchor);
        da.partial_cmp(&db)
            .expect("finite distances")
            .then_with(|| a.label.cmp(b.label))
    });
    candidates.first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_geo::cities;

    fn loc(name: &str) -> GeoPoint {
        cities::by_name(name).unwrap().location
    }

    #[test]
    fn initiator_policy_uses_one_site_near_initiator() {
        let reg = SiteRegistry::us_fleet();
        // Eastern initiator, Western participant.
        let locs = [loc("New York, NY"), loc("San Francisco, CA")];
        let a = ServerAssignment::assign(
            AssignmentPolicy::NearestToInitiator,
            &reg,
            Provider::FaceTime,
            &locs,
        );
        assert_eq!(a.distinct_sites().len(), 1);
        assert_eq!(a.attachments[0].label, "E");
        // The Western participant eats the cross-country distance.
        assert!(a.worst_attachment_km(&locs) > 3_000.0);
    }

    #[test]
    fn initiator_location_controls_the_site() {
        let reg = SiteRegistry::us_fleet();
        // Same pair, Western initiator this time.
        let locs = [loc("San Francisco, CA"), loc("New York, NY")];
        let a = ServerAssignment::assign(
            AssignmentPolicy::NearestToInitiator,
            &reg,
            Provider::FaceTime,
            &locs,
        );
        assert_eq!(a.attachments[0].label, "W");
    }

    #[test]
    fn geo_distributed_attaches_everyone_nearby() {
        let reg = SiteRegistry::us_fleet();
        let locs = [loc("New York, NY"), loc("San Francisco, CA")];
        let a = ServerAssignment::assign(
            AssignmentPolicy::GeoDistributed,
            &reg,
            Provider::FaceTime,
            &locs,
        );
        assert_eq!(a.distinct_sites().len(), 2);
        // Nobody is more than ~500 km from their attachment.
        assert!(a.worst_attachment_km(&locs) < 500.0);
    }

    #[test]
    fn teams_single_site_gives_geo_distribution_nothing() {
        let reg = SiteRegistry::us_fleet();
        let locs = [loc("New York, NY"), loc("Miami, FL")];
        let a = ServerAssignment::assign(
            AssignmentPolicy::GeoDistributed,
            &reg,
            Provider::Teams,
            &locs,
        );
        assert_eq!(a.distinct_sites().len(), 1);
        assert_eq!(a.attachments[0].label, "W");
    }

    #[test]
    fn failover_picks_next_nearest_live_site() {
        let reg = SiteRegistry::us_fleet();
        let anchor = loc("New York, NY");
        let primary = reg.nearest(Provider::FaceTime, &anchor).unwrap();
        let backup = failover_site(&reg, Provider::FaceTime, &anchor, &[primary.label]).unwrap();
        assert_ne!(backup.label, primary.label);
        // The backup is farther than the primary but still the best of the rest.
        for s in reg.for_provider(Provider::FaceTime) {
            if s.label != primary.label {
                assert!(
                    backup.location().distance_km(&anchor)
                        <= s.location().distance_km(&anchor) + 1e-9
                );
            }
        }
    }

    #[test]
    fn failover_with_every_site_dead_is_none() {
        let reg = SiteRegistry::us_fleet();
        let anchor = loc("New York, NY");
        let all: Vec<&str> = reg
            .for_provider(Provider::FaceTime)
            .into_iter()
            .map(|s| s.label)
            .collect();
        assert!(failover_site(&reg, Provider::FaceTime, &anchor, &all).is_none());
    }

    #[test]
    #[should_panic(expected = "needs participants")]
    fn empty_session_is_rejected() {
        ServerAssignment::assign(
            AssignmentPolicy::NearestToInitiator,
            &SiteRegistry::us_fleet(),
            Provider::Zoom,
            &[],
        );
    }
}
