//! Rate control and persona availability.
//!
//! Two very different control loops, mirroring §4.3's contrast:
//!
//! * [`RateController`] — the 2D-video loop: the receiver reports goodput
//!   and loss once a second; the sender multiplicatively backs off under
//!   loss and additively probes upward when clean (the AIMD shape every
//!   production VCA uses). This is why constrained links degrade 2D
//!   quality instead of killing the call.
//! * [`PersonaAvailability`] — the semantic stream has no ladder. The only
//!   observable is frame completeness; when it stays below a threshold,
//!   the persona is declared unavailable and the UI shows "poor
//!   connection". Recovery requires sustained clean delivery.

use visionsim_core::time::SimTime;
use visionsim_core::trace::{self, TraceKind};
use visionsim_core::units::DataRate;

/// One receiver report covering the last feedback interval.
#[derive(Clone, Copy, Debug)]
pub struct ReceiverReport {
    /// Bytes that arrived in the interval.
    pub received_bytes: u64,
    /// Fraction of packets lost in the interval, `[0, 1]`.
    pub loss: f64,
    /// Interval length, seconds.
    pub interval_s: f64,
}

impl ReceiverReport {
    /// Goodput implied by the report.
    pub fn goodput(&self) -> DataRate {
        if self.interval_s <= 0.0 {
            return DataRate::ZERO;
        }
        DataRate::from_bps_f64(self.received_bytes as f64 * 8.0 / self.interval_s)
    }
}

/// AIMD-style sender rate controller for adaptive 2D video.
#[derive(Clone, Debug)]
pub struct RateController {
    target: DataRate,
    /// Ceiling (the encoder's full-quality rate).
    max: DataRate,
    /// Floor (the encoder ladder bottom).
    min: DataRate,
}

impl RateController {
    /// A controller bounded by the encoder's ladder.
    pub fn new(max: DataRate, min: DataRate) -> Self {
        assert!(min <= max, "min must not exceed max");
        RateController {
            target: max,
            max,
            min,
        }
    }

    /// Current target rate.
    pub fn target(&self) -> DataRate {
        self.target
    }

    /// Process one receiver report, returning the new target.
    pub fn on_report(&mut self, report: &ReceiverReport) -> DataRate {
        if report.loss > 0.02 {
            // Multiplicative decrease toward observed goodput.
            let backed = (report.goodput().as_bps() as f64 * 0.85)
                .min(self.target.as_bps() as f64 * 0.8);
            self.target = DataRate::from_bps_f64(backed);
        } else {
            // Additive increase: probe up by 5% of the ceiling.
            let probe = self.target.as_bps() + self.max.as_bps() / 20;
            self.target = DataRate::from_bps(probe);
        }
        self.target = self.target.clamp(self.min, self.max);
        self.target
    }
}

/// The congestion controller's probing state (GCC-style).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrlState {
    /// Additively probing for more bandwidth.
    Increase = 0,
    /// Holding the target while the queue drains or signals are marginal.
    Hold = 1,
    /// Backing off multiplicatively after overuse.
    Decrease = 2,
}

/// One feedback interval's congestion signals, as carried by the RR + XR
/// pair: loss from the RR, arrival rate and a queuing-delay estimate from
/// the XR.
#[derive(Clone, Copy, Debug)]
pub struct CongestionSignals {
    /// Fraction of packets lost in the interval, `[0, 1]`.
    pub loss: f64,
    /// Receiver's arrival-rate estimate over the interval.
    pub arrival: DataRate,
    /// Receiver-estimated queuing delay, µs (one-way delay above the
    /// running minimum, or smoothed interarrival jitter as a proxy).
    pub queue_delay_us: u64,
}

/// Delay+loss congestion controller (GCC/BBR-flavored).
///
/// AIMD with a delay-gradient early-warning: loss above a backoff
/// threshold — or a high *and rising* queue-delay estimate — cuts the
/// target multiplicatively toward what actually arrived; marginal signals
/// hold; clean intervals probe upward by a constant additive step. The
/// equal additive step with multiplicative decrease is what makes
/// competing flows converge to fair shares (Chiu–Jain), and the
/// post-backoff hold dwell keeps the controller from re-probing into a
/// queue it just drained.
///
/// Deterministic: state is a pure function of the report sequence. State
/// changes are traced as [`TraceKind::CtrlState`].
#[derive(Clone, Debug)]
pub struct CongestionController {
    /// Flow label used in trace events (e.g. SSRC).
    flow: u64,
    target: DataRate,
    max: DataRate,
    min: DataRate,
    /// Additive probe step per clean report.
    step: DataRate,
    state: CtrlState,
    prev_delay_us: f64,
    /// Smoothed per-report delay gradient, µs.
    gradient_ewma: f64,
    /// Reports left to dwell in `Hold` after a decrease.
    hold_left: u32,
    state_changes: u32,
}

/// Loss fraction above which the controller backs off.
const LOSS_BACKOFF: f64 = 0.10;
/// Loss fraction above which the controller stops probing.
const LOSS_HOLD: f64 = 0.02;
/// Absolute queue delay considered "standing queue", µs.
const DELAY_HIGH_US: f64 = 50_000.0;
/// Smoothed delay gradient above which probing pauses, µs per report.
const GRADIENT_HOLD_US: f64 = 2_000.0;
/// Multiplicative decrease factor.
const BETA: f64 = 0.85;
/// Hold dwell after a decrease, reports.
const HOLD_DWELL: u32 = 2;

impl CongestionController {
    /// A controller for `flow`, bounded by the encoder ladder, probing by
    /// `step` per clean report.
    pub fn new(flow: u64, max: DataRate, min: DataRate, step: DataRate) -> Self {
        assert!(min <= max, "min must not exceed max");
        CongestionController {
            flow,
            target: min,
            max,
            min,
            step,
            state: CtrlState::Increase,
            prev_delay_us: 0.0,
            gradient_ewma: 0.0,
            hold_left: 0,
            state_changes: 0,
        }
    }

    /// Start from a specific initial target (clamped to the bounds).
    pub fn with_initial(mut self, target: DataRate) -> Self {
        self.target = target.clamp(self.min, self.max);
        self
    }

    /// Current target rate.
    pub fn target(&self) -> DataRate {
        self.target
    }

    /// Current probing state.
    pub fn state(&self) -> CtrlState {
        self.state
    }

    /// State transitions so far.
    pub fn state_changes(&self) -> u32 {
        self.state_changes
    }

    /// Target as a fraction of the ceiling — the degradation ladder's
    /// congestion input (sustained backoff pushes this below the ladder
    /// threshold, settling the session in a degraded mode).
    pub fn utilization(&self) -> f64 {
        self.target.as_bps() as f64 / self.max.as_bps().max(1) as f64
    }

    /// Process one feedback interval, returning the new target.
    pub fn on_report(&mut self, now: SimTime, sig: &CongestionSignals) -> DataRate {
        let delay = sig.queue_delay_us as f64;
        let gradient = delay - self.prev_delay_us;
        self.prev_delay_us = delay;
        self.gradient_ewma = 0.5 * self.gradient_ewma + 0.5 * gradient;

        let overuse =
            sig.loss > LOSS_BACKOFF || (delay > DELAY_HIGH_US && self.gradient_ewma > 0.0);
        let marginal = sig.loss > LOSS_HOLD || self.gradient_ewma > GRADIENT_HOLD_US;
        let next = if overuse {
            CtrlState::Decrease
        } else if marginal || self.hold_left > 0 {
            self.hold_left = self.hold_left.saturating_sub(1);
            CtrlState::Hold
        } else {
            CtrlState::Increase
        };
        match next {
            CtrlState::Decrease => {
                // Toward what actually arrived, never above a plain
                // multiplicative cut of the current target.
                let backed = (sig.arrival.as_bps() as f64 * BETA)
                    .min(self.target.as_bps() as f64 * BETA);
                self.target = DataRate::from_bps_f64(backed);
                self.hold_left = HOLD_DWELL;
            }
            CtrlState::Hold => {}
            CtrlState::Increase => {
                self.target = DataRate::from_bps(self.target.as_bps() + self.step.as_bps());
            }
        }
        self.target = self.target.clamp(self.min, self.max);
        if next != self.state {
            self.state_changes += 1;
            if trace::enabled() {
                trace::record(
                    TraceKind::CtrlState,
                    now.as_nanos(),
                    0,
                    self.flow,
                    next as u64,
                    self.target.as_bps() / 1_000,
                );
            }
        }
        self.state = next;
        self.target
    }
}

/// Persona availability states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersonaState {
    /// Persona rendering normally.
    Available,
    /// "Poor connection" — persona unavailable.
    PoorConnection,
}

/// The semantic stream's availability state machine.
#[derive(Clone, Debug)]
pub struct PersonaAvailability {
    state: PersonaState,
    /// Consecutive bad feedback intervals.
    bad_streak: u32,
    /// Consecutive good intervals while down.
    good_streak: u32,
    /// Completeness below this is a bad interval.
    threshold: f64,
    /// Bad intervals before declaring poor connection.
    down_after: u32,
    /// Good intervals before recovering.
    up_after: u32,
}

impl Default for PersonaAvailability {
    fn default() -> Self {
        PersonaAvailability {
            state: PersonaState::Available,
            bad_streak: 0,
            good_streak: 0,
            threshold: 0.9,
            down_after: 2,
            up_after: 3,
        }
    }
}

impl PersonaAvailability {
    /// A fresh state machine.
    pub fn new() -> Self {
        PersonaAvailability::default()
    }

    /// Current state.
    pub fn state(&self) -> PersonaState {
        self.state
    }

    /// True when the persona is up.
    pub fn is_available(&self) -> bool {
        self.state == PersonaState::Available
    }

    /// Feed one interval's frame completeness (fraction of semantic frames
    /// fully reassembled). Returns the state after the update.
    pub fn on_interval(&mut self, completeness: f64) -> PersonaState {
        let good = completeness >= self.threshold;
        match self.state {
            PersonaState::Available => {
                if good {
                    self.bad_streak = 0;
                } else {
                    self.bad_streak += 1;
                    if self.bad_streak >= self.down_after {
                        self.state = PersonaState::PoorConnection;
                        self.good_streak = 0;
                    }
                }
            }
            PersonaState::PoorConnection => {
                if good {
                    self.good_streak += 1;
                    if self.good_streak >= self.up_after {
                        self.state = PersonaState::Available;
                        self.bad_streak = 0;
                    }
                } else {
                    self.good_streak = 0;
                }
            }
        }
        self.state
    }
}

/// What a participant's persona is rendered as right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersonaMode {
    /// Full spatial persona from the semantic stream.
    Spatial,
    /// Degraded: the 2D video fallback is shown instead, because the
    /// semantic stream starved.
    TwoDFallback,
}

/// Graceful-degradation state machine: spatial persona → 2D fallback when
/// the semantic stream starves, with hysteresis so one marginal interval
/// cannot flap the rendering mode.
///
/// Distinct from [`PersonaAvailability`] (which models the paper's observed
/// "poor connection" blankout): the ladder is the recovery behaviour a
/// resilient client *should* have — it swaps in the 2D stream instead of
/// showing nothing, and only swaps back after a sustained healthy window
/// (`up_after` > `down_after`, so recovery is deliberately stickier than
/// failure).
#[derive(Clone, Debug)]
pub struct DegradationLadder {
    mode: PersonaMode,
    bad_streak: u32,
    good_streak: u32,
    /// Completeness below this marks an interval unhealthy.
    threshold: f64,
    /// Unhealthy intervals before falling back to 2D.
    down_after: u32,
    /// Healthy intervals before restoring the spatial persona.
    up_after: u32,
    /// Spatial→2D transitions so far.
    fallbacks: u32,
}

impl Default for DegradationLadder {
    fn default() -> Self {
        DegradationLadder {
            mode: PersonaMode::Spatial,
            bad_streak: 0,
            good_streak: 0,
            threshold: 0.9,
            down_after: 2,
            up_after: 4,
            fallbacks: 0,
        }
    }
}

impl DegradationLadder {
    /// A fresh ladder rendering the spatial persona.
    pub fn new() -> Self {
        DegradationLadder::default()
    }

    /// Current rendering mode.
    pub fn mode(&self) -> PersonaMode {
        self.mode
    }

    /// True while the full spatial persona is rendered.
    pub fn is_spatial(&self) -> bool {
        self.mode == PersonaMode::Spatial
    }

    /// Number of spatial→2D fallback transitions so far.
    pub fn fallbacks(&self) -> u32 {
        self.fallbacks
    }

    /// Feed one interval's semantic frame completeness; returns the mode
    /// in force after the update.
    pub fn on_interval(&mut self, completeness: f64) -> PersonaMode {
        let good = completeness >= self.threshold;
        match self.mode {
            PersonaMode::Spatial => {
                if good {
                    self.bad_streak = 0;
                } else {
                    self.bad_streak += 1;
                    if self.bad_streak >= self.down_after {
                        self.mode = PersonaMode::TwoDFallback;
                        self.fallbacks += 1;
                        self.good_streak = 0;
                    }
                }
            }
            PersonaMode::TwoDFallback => {
                if good {
                    self.good_streak += 1;
                    if self.good_streak >= self.up_after {
                        self.mode = PersonaMode::Spatial;
                        self.bad_streak = 0;
                    }
                } else {
                    self.good_streak = 0;
                }
            }
        }
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_report(rate_mbps: f64) -> ReceiverReport {
        ReceiverReport {
            received_bytes: (rate_mbps * 1e6 / 8.0) as u64,
            loss: 0.0,
            interval_s: 1.0,
        }
    }

    fn lossy_report(rate_mbps: f64, loss: f64) -> ReceiverReport {
        ReceiverReport {
            received_bytes: (rate_mbps * 1e6 / 8.0) as u64,
            loss,
            interval_s: 1.0,
        }
    }

    #[test]
    fn goodput_arithmetic() {
        assert!((clean_report(4.0).goodput().as_mbps_f64() - 4.0).abs() < 1e-9);
        assert_eq!(
            ReceiverReport {
                received_bytes: 100,
                loss: 0.0,
                interval_s: 0.0
            }
            .goodput(),
            DataRate::ZERO
        );
    }

    #[test]
    fn loss_triggers_multiplicative_decrease() {
        let mut rc = RateController::new(DataRate::from_mbps(4), DataRate::from_kbps(300));
        let before = rc.target();
        let after = rc.on_report(&lossy_report(2.0, 0.1));
        assert!(after < before);
        assert!(after.as_mbps_f64() <= 2.0);
    }

    #[test]
    fn clean_reports_probe_upward_to_ceiling() {
        let mut rc = RateController::new(DataRate::from_mbps(4), DataRate::from_kbps(300));
        rc.on_report(&lossy_report(1.0, 0.2)); // knock it down
        let low = rc.target();
        for _ in 0..100 {
            rc.on_report(&clean_report(4.0));
        }
        assert!(rc.target() > low);
        assert_eq!(rc.target(), DataRate::from_mbps(4)); // back at ceiling
    }

    #[test]
    fn controller_respects_the_floor() {
        let mut rc = RateController::new(DataRate::from_mbps(4), DataRate::from_kbps(300));
        for _ in 0..50 {
            rc.on_report(&lossy_report(0.01, 0.5));
        }
        assert_eq!(rc.target(), DataRate::from_kbps(300));
    }

    #[test]
    fn converges_near_a_bottleneck() {
        // A 1 Mbps bottleneck: the controller should settle around it.
        let mut rc = RateController::new(DataRate::from_mbps(4), DataRate::from_kbps(300));
        for _ in 0..200 {
            let offered = rc.target().as_mbps_f64();
            let delivered = offered.min(1.0);
            let loss = if offered > 1.0 {
                (offered - 1.0) / offered
            } else {
                0.0
            };
            rc.on_report(&lossy_report(delivered, loss));
        }
        let settled = rc.target().as_mbps_f64();
        assert!((0.5..1.4).contains(&settled), "settled {settled}");
    }

    #[test]
    fn persona_goes_down_after_sustained_incompleteness() {
        let mut pa = PersonaAvailability::new();
        assert!(pa.is_available());
        pa.on_interval(0.5);
        assert!(pa.is_available(), "one bad interval is tolerated");
        pa.on_interval(0.5);
        assert_eq!(pa.state(), PersonaState::PoorConnection);
    }

    #[test]
    fn persona_recovers_after_sustained_clean_delivery() {
        let mut pa = PersonaAvailability::new();
        pa.on_interval(0.0);
        pa.on_interval(0.0);
        assert!(!pa.is_available());
        pa.on_interval(1.0);
        pa.on_interval(1.0);
        assert!(!pa.is_available(), "recovery needs three good intervals");
        pa.on_interval(1.0);
        assert!(pa.is_available());
    }

    #[test]
    fn isolated_glitches_do_not_flap() {
        let mut pa = PersonaAvailability::new();
        for i in 0..100 {
            let completeness = if i % 10 == 0 { 0.3 } else { 1.0 };
            pa.on_interval(completeness);
            assert!(pa.is_available(), "flapped at interval {i}");
        }
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn controller_rejects_inverted_bounds() {
        RateController::new(DataRate::from_kbps(100), DataRate::from_mbps(1));
    }

    #[test]
    fn ladder_falls_back_after_sustained_starvation() {
        let mut dl = DegradationLadder::new();
        assert!(dl.is_spatial());
        dl.on_interval(0.2);
        assert!(dl.is_spatial(), "one bad interval tolerated");
        dl.on_interval(0.2);
        assert_eq!(dl.mode(), PersonaMode::TwoDFallback);
        assert_eq!(dl.fallbacks(), 1);
    }

    #[test]
    fn ladder_recovery_is_stickier_than_failure() {
        let mut dl = DegradationLadder::new();
        dl.on_interval(0.0);
        dl.on_interval(0.0);
        assert!(!dl.is_spatial());
        for _ in 0..3 {
            dl.on_interval(1.0);
            assert!(!dl.is_spatial(), "recovery needs four healthy intervals");
        }
        dl.on_interval(1.0);
        assert!(dl.is_spatial());
        assert_eq!(dl.fallbacks(), 1, "round trip is one fallback");
    }

    #[test]
    fn ladder_does_not_flap_during_a_single_episode() {
        // One contiguous 2 s starvation episode (intervals at ~1 Hz):
        // exactly one spatial→2D transition, then recovery.
        let mut dl = DegradationLadder::new();
        let timeline = [1.0, 1.0, 0.1, 0.3, 0.2, 0.95, 1.0, 1.0, 1.0, 1.0, 1.0];
        for c in timeline {
            dl.on_interval(c);
        }
        assert_eq!(dl.fallbacks(), 1, "episode must cause exactly one fallback");
        assert!(dl.is_spatial(), "must recover after the healthy window");
    }

    fn sig(loss: f64, arrival_kbps: u64, queue_delay_us: u64) -> CongestionSignals {
        CongestionSignals {
            loss,
            arrival: DataRate::from_kbps(arrival_kbps),
            queue_delay_us,
        }
    }

    fn cc() -> CongestionController {
        CongestionController::new(
            1,
            DataRate::from_mbps(4),
            DataRate::from_kbps(150),
            DataRate::from_kbps(100),
        )
    }

    #[test]
    fn controller_probes_up_when_clean() {
        let mut c = cc();
        let start = c.target();
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            t += visionsim_core::time::SimDuration::from_millis(200);
            c.on_report(t, &sig(0.0, 1_000, 0));
        }
        assert_eq!(c.state(), CtrlState::Increase);
        assert_eq!(
            c.target().as_bps(),
            start.as_bps() + 5 * DataRate::from_kbps(100).as_bps()
        );
    }

    #[test]
    fn heavy_loss_backs_off_toward_arrival() {
        let mut c = cc().with_initial(DataRate::from_mbps(3));
        c.on_report(SimTime::from_millis(200), &sig(0.3, 1_000, 0));
        assert_eq!(c.state(), CtrlState::Decrease);
        // 0.85 × 1 Mbps arrival < 0.85 × 3 Mbps target.
        assert_eq!(c.target(), DataRate::from_bps_f64(1e6 * 0.85));
        // Post-backoff dwell: the next clean report holds, not probes.
        c.on_report(SimTime::from_millis(400), &sig(0.0, 850, 0));
        assert_eq!(c.state(), CtrlState::Hold);
    }

    #[test]
    fn rising_standing_queue_triggers_delay_backoff_without_loss() {
        let mut c = cc().with_initial(DataRate::from_mbps(3));
        let mut t = SimTime::ZERO;
        // Queue delay climbing through the 50 ms standing-queue bar.
        for d in [10_000u64, 30_000, 60_000, 90_000] {
            t += visionsim_core::time::SimDuration::from_millis(200);
            c.on_report(t, &sig(0.0, 2_000, d));
        }
        assert_eq!(c.state(), CtrlState::Decrease, "delay gradient must back off");
        assert!(c.target() < DataRate::from_mbps(3));
    }

    #[test]
    fn marginal_loss_holds_instead_of_probing() {
        let mut c = cc().with_initial(DataRate::from_mbps(2));
        c.on_report(SimTime::from_millis(200), &sig(0.05, 2_000, 0));
        assert_eq!(c.state(), CtrlState::Hold);
        assert_eq!(c.target(), DataRate::from_mbps(2));
    }

    #[test]
    fn controller_respects_floor_and_ceiling() {
        let mut c = cc();
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            t += visionsim_core::time::SimDuration::from_millis(200);
            c.on_report(t, &sig(0.5, 10, 0));
        }
        assert_eq!(c.target(), DataRate::from_kbps(150));
        for _ in 0..200 {
            t += visionsim_core::time::SimDuration::from_millis(200);
            c.on_report(t, &sig(0.0, 4_000, 0));
        }
        assert_eq!(c.target(), DataRate::from_mbps(4));
        assert!((c.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_controllers_converge_to_fair_shares_of_a_shared_bottleneck() {
        // Fluid model of a shared 4 Mbps FIFO: each flow's arrival is its
        // capacity share; loss and queue delay appear only when the sum
        // exceeds capacity. AIMD must equalize the rates from a 10:1
        // start.
        let cap = 4.0e6;
        let mut a = cc().with_initial(DataRate::from_kbps(3_000));
        let mut b = cc().with_initial(DataRate::from_kbps(300));
        let mut t = SimTime::ZERO;
        let mut queue_us = 0.0f64;
        for _ in 0..300 {
            t += visionsim_core::time::SimDuration::from_millis(200);
            let ra = a.target().as_bps() as f64;
            let rb = b.target().as_bps() as f64;
            let sum = ra + rb;
            let (loss, arr_a, arr_b) = if sum > cap {
                queue_us = (queue_us + 40_000.0 * (sum / cap - 1.0)).min(200_000.0);
                ((sum - cap) / sum, ra / sum * cap, rb / sum * cap)
            } else {
                queue_us = (queue_us - 20_000.0).max(0.0);
                (0.0, ra, rb)
            };
            a.on_report(t, &sig(loss, (arr_a / 1_000.0) as u64, queue_us as u64));
            b.on_report(t, &sig(loss, (arr_b / 1_000.0) as u64, queue_us as u64));
        }
        let ra = a.target().as_bps() as f64;
        let rb = b.target().as_bps() as f64;
        let jain = (ra + rb).powi(2) / (2.0 * (ra * ra + rb * rb));
        assert!(jain > 0.95, "fairness {jain:.3} (a={ra} b={rb})");
        for r in [ra, rb] {
            assert!(
                (0.3 * cap..=0.7 * cap).contains(&r),
                "flow stuck at {r} of {cap}"
            );
        }
    }

    #[test]
    fn ladder_marginal_interval_resets_recovery_streak() {
        let mut dl = DegradationLadder::new();
        dl.on_interval(0.0);
        dl.on_interval(0.0);
        dl.on_interval(1.0);
        dl.on_interval(1.0);
        dl.on_interval(0.5); // relapse mid-recovery
        dl.on_interval(1.0);
        dl.on_interval(1.0);
        dl.on_interval(1.0);
        assert!(!dl.is_spatial(), "streak must restart after relapse");
        dl.on_interval(1.0);
        assert!(dl.is_spatial());
    }
}
