//! 2D-persona video encoder rate model.
//!
//! The 2D persona is "rendered from its corresponding spatial persona" for
//! a static virtual-camera viewport (§2), then encoded like any
//! videoconference stream. The model produces per-frame encoded sizes with
//! the structure that matters for traffic analysis: a closed GOP with
//! large I-frames and smaller, motion-dependent P-frames, averaging to
//! `resolution × fps × bits_per_pixel` at quality 1.0.
//!
//! The quality ladder (resolution scaling) is what rate adaptation walks —
//! the capability the semantic stream lacks.

use visionsim_core::rng::SimRng;
use visionsim_core::units::{ByteSize, DataRate};

/// Encoder configuration.
#[derive(Clone, Copy, Debug)]
pub struct VideoEncoderConfig {
    /// Full resolution (width, height).
    pub resolution: (u32, u32),
    /// Frame rate.
    pub fps: f64,
    /// Bits per pixel at quality 1.0.
    pub bits_per_pixel: f64,
    /// I-frame interval, frames (a 2 s GOP at 30 FPS).
    pub gop: u32,
    /// How much larger an I-frame is than a P-frame.
    pub i_frame_ratio: f64,
}

impl VideoEncoderConfig {
    /// Config from an app profile's 2D parameters.
    pub fn new(resolution: (u32, u32), fps: f64, bits_per_pixel: f64) -> Self {
        VideoEncoderConfig {
            resolution,
            fps,
            bits_per_pixel,
            gop: 60,
            i_frame_ratio: 4.0,
        }
    }

    /// Mean bitrate at a given quality (0 < q ≤ 1): quality scales pixel
    /// count (the resolution ladder), so bitrate scales linearly with it.
    pub fn bitrate_at(&self, quality: f64) -> DataRate {
        let (w, h) = self.resolution;
        DataRate::from_bps_f64(w as f64 * h as f64 * self.fps * self.bits_per_pixel * quality)
    }
}

/// The stateful encoder.
#[derive(Clone, Debug)]
pub struct VideoEncoder {
    config: VideoEncoderConfig,
    /// Current quality rung (0, 1]; 1.0 = full ladder.
    quality: f64,
    frame_index: u64,
    /// Emit an I-frame on the next `next_frame` call regardless of GOP
    /// position (PLI/keyframe-request recovery).
    force_i: bool,
}

/// The lowest quality rung the ladder can drop to (≈180p-class).
pub const MIN_QUALITY: f64 = 0.06;

impl VideoEncoder {
    /// An encoder at full quality.
    pub fn new(config: VideoEncoderConfig) -> Self {
        VideoEncoder {
            config,
            quality: 1.0,
            frame_index: 0,
            force_i: false,
        }
    }

    /// Current quality rung.
    pub fn quality(&self) -> f64 {
        self.quality
    }

    /// The configuration.
    pub fn config(&self) -> &VideoEncoderConfig {
        &self.config
    }

    /// Set the quality rung (clamped to `[MIN_QUALITY, 1.0]`).
    pub fn set_quality(&mut self, q: f64) {
        self.quality = q.clamp(MIN_QUALITY, 1.0);
    }

    /// Target so that the mean bitrate approximates `rate` (clamps at the
    /// ladder bottom — below that the encoder cannot go, and the call
    /// degrades to frozen video rather than disappearing).
    pub fn adapt_to(&mut self, rate: DataRate) {
        let full = self.config.bitrate_at(1.0).as_bps() as f64;
        if full <= 0.0 {
            return;
        }
        self.set_quality(rate.as_bps() as f64 / full);
    }

    /// Request an out-of-band keyframe: the next frame is encoded as an
    /// I-frame. This is the sender half of PLI recovery — after a loss
    /// burst the receiver cannot decode P-frames referencing lost data
    /// until a fresh I-frame resynchronises it.
    pub fn force_keyframe(&mut self) {
        self.force_i = true;
    }

    /// Encode the next frame, returning its size.
    pub fn next_frame(&mut self, rng: &mut SimRng) -> ByteSize {
        let mean_bits_per_frame =
            self.config.bitrate_at(self.quality).as_bps() as f64 / self.config.fps;
        let is_i = self.force_i || self.frame_index.is_multiple_of(self.config.gop as u64);
        self.force_i = false;
        self.frame_index += 1;
        // With GOP g and ratio r, I-frames carry r× a P-frame's bits and
        // the mean must hold: p·(g-1+r) = g·mean ⇒ p = g·mean/(g-1+r).
        let g = self.config.gop as f64;
        let r = self.config.i_frame_ratio;
        let p_bits = g * mean_bits_per_frame / (g - 1.0 + r);
        let bits = if is_i { p_bits * r } else { p_bits };
        // Motion-dependent variation.
        let jittered = rng.jitter(bits, 0.25).max(64.0);
        ByteSize::from_bytes((jittered / 8.0).round() as u64)
    }

    /// Frames encoded so far.
    pub fn frames_encoded(&self) -> u64 {
        self.frame_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn webex_config() -> VideoEncoderConfig {
        VideoEncoderConfig::new((1_920, 1_080), 30.0, 0.068)
    }

    #[test]
    fn mean_rate_matches_configuration() {
        let mut enc = VideoEncoder::new(webex_config());
        let mut rng = SimRng::seed_from_u64(1);
        let frames = 30 * 30; // 30 s
        let total: u64 = (0..frames).map(|_| enc.next_frame(&mut rng).as_bytes()).sum();
        let mbps = total as f64 * 8.0 / 30.0 / 1e6;
        let expected = webex_config().bitrate_at(1.0).as_mbps_f64();
        assert!(
            (mbps - expected).abs() < expected * 0.1,
            "measured {mbps}, expected {expected}"
        );
        assert!(mbps > 4.0, "webex must exceed 4 Mbps: {mbps}");
    }

    #[test]
    fn i_frames_are_larger() {
        let mut enc = VideoEncoder::new(webex_config());
        let mut rng = SimRng::seed_from_u64(2);
        let sizes: Vec<u64> = (0..120).map(|_| enc.next_frame(&mut rng).as_bytes()).collect();
        let i_mean = (sizes[0] + sizes[60]) as f64 / 2.0;
        let p_mean = sizes
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 60 != 0)
            .map(|(_, &s)| s as f64)
            .sum::<f64>()
            / 118.0;
        assert!(i_mean > p_mean * 2.5, "I {i_mean} vs P {p_mean}");
    }

    #[test]
    fn quality_scales_bitrate_linearly() {
        let cfg = webex_config();
        let full = cfg.bitrate_at(1.0).as_bps() as f64;
        let half = cfg.bitrate_at(0.5).as_bps() as f64;
        assert!((full / half - 2.0).abs() < 1e-9);
    }

    #[test]
    fn adapt_to_hits_the_requested_rate() {
        let mut enc = VideoEncoder::new(webex_config());
        enc.adapt_to(DataRate::from_mbps(1));
        let mut rng = SimRng::seed_from_u64(3);
        let total: u64 = (0..900).map(|_| enc.next_frame(&mut rng).as_bytes()).sum();
        let mbps = total as f64 * 8.0 / 30.0 / 1e6;
        assert!((mbps - 1.0).abs() < 0.15, "adapted rate {mbps}");
    }

    #[test]
    fn adaptation_clamps_at_the_ladder_bottom() {
        let mut enc = VideoEncoder::new(webex_config());
        enc.adapt_to(DataRate::from_kbps(1));
        assert_eq!(enc.quality(), MIN_QUALITY);
        enc.adapt_to(DataRate::from_mbps(100));
        assert_eq!(enc.quality(), 1.0);
    }

    #[test]
    fn forced_keyframe_is_i_sized_then_reverts() {
        let mut enc = VideoEncoder::new(webex_config());
        let mut rng = SimRng::seed_from_u64(5);
        enc.next_frame(&mut rng); // consume the GOP-opening I-frame
        let p = enc.next_frame(&mut rng).as_bytes() as f64;
        enc.force_keyframe();
        let forced = enc.next_frame(&mut rng).as_bytes() as f64;
        let after = enc.next_frame(&mut rng).as_bytes() as f64;
        assert!(forced > p * 2.0, "forced I {forced} vs P {p}");
        assert!(after < forced / 2.0, "flag must clear after one frame");
    }

    #[test]
    fn frames_never_empty() {
        let mut enc = VideoEncoder::new(VideoEncoderConfig::new((64, 36), 30.0, 0.01));
        enc.set_quality(MIN_QUALITY);
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(enc.next_frame(&mut rng).as_bytes() > 0);
        }
    }
}
