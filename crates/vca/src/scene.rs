//! Spatial arrangement and gaze dynamics.
//!
//! Where the personas sit in each viewer's space and where the viewer
//! looks determine the visibility pipeline's per-frame decisions — the
//! mechanism behind Figure 6(a)'s distribution shapes (the 5th percentile
//! flattening comes from moments when most personas sit in the gaze
//! periphery).
//!
//! FaceTime arranges spatial personas around a shared virtual table; the
//! viewer's gaze saccades between participants (attention follows the
//! speaker) with idle wander in between.

use visionsim_core::rng::SimRng;
use visionsim_mesh::geometry::Vec3;
use visionsim_render::camera::Viewer;

/// Seating layouts for the remote personas in one viewer's space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeatingLayout {
    /// An arc in front of the viewer at the given radius — FaceTime's
    /// default shared-table arrangement. Personas sit at conversational
    /// spacing (~25 degrees apart), clamped to a comfortable total spread.
    Arc,
    /// A straight line receding from the viewer (the §4.4 occlusion
    /// experiment's arrangement).
    Line,
}

impl SeatingLayout {
    /// Positions for `n` personas, for a viewer at the origin looking
    /// down −Z. `distance_m` is the arc radius or line start.
    pub fn positions(&self, n: usize, distance_m: f32) -> Vec<Vec3> {
        match self {
            SeatingLayout::Arc => {
                // Conversational spacing: ~25° between neighbours, capped
                // at ±50° so the group fits one social circle.
                let half = (12.5 * (n as f32 - 1.0)).min(50.0);
                (0..n)
                    .map(|i| {
                        let frac = if n == 1 {
                            0.5
                        } else {
                            i as f32 / (n - 1) as f32
                        };
                        let angle = (-half + 2.0 * half * frac).to_radians();
                        Vec3::new(
                            distance_m * angle.sin(),
                            0.0,
                            -distance_m * angle.cos(),
                        )
                    })
                    .collect()
            }
            SeatingLayout::Line => (0..n)
                .map(|i| Vec3::new(0.0, 0.0, -(distance_m + i as f32)))
                .collect(),
        }
    }
}

/// How long an attention shift takes: the gaze sweeps continuously to the
/// new target rather than teleporting, so personas along the way pass
/// through the fovea — the transient multi-persona-foveal moments that
/// populate Figure 6(b)'s upper percentiles.
const SWEEP_S: f64 = 0.3;

/// Gaze behaviour over a session.
#[derive(Clone, Debug)]
pub struct GazeDynamics {
    /// Personas to look between.
    targets: Vec<Vec3>,
    /// Current target index.
    current: usize,
    /// Seconds until the next attention shift.
    until_shift_s: f64,
    /// Remaining sweep time after a shift (0 = settled).
    sweep_left_s: f64,
    /// Gaze direction the current sweep started from.
    sweep_from: Vec3,
    /// Small wander offset.
    wander: Vec3,
    /// Last returned gaze direction.
    last_gaze: Vec3,
    /// Mean dwell on one target, seconds.
    pub mean_dwell_s: f64,
    /// Optional ambient target (shared-content window) and the
    /// probability an attention shift lands on it.
    ambient: Option<(Vec3, f64)>,
}

impl GazeDynamics {
    /// Dynamics over the given targets (at least one).
    pub fn new(targets: Vec<Vec3>) -> Self {
        assert!(!targets.is_empty(), "gaze needs at least one target");
        let first = targets[0].normalized();
        GazeDynamics {
            targets,
            current: 0,
            until_shift_s: 0.0,
            sweep_left_s: 0.0,
            sweep_from: first,
            wander: Vec3::ZERO,
            last_gaze: first,
            mean_dwell_s: 2.0,
            ambient: None,
        }
    }

    /// Add an ambient shared-content target attended with probability
    /// `prob` per attention shift.
    pub fn with_ambient(mut self, ambient: Vec3, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.ambient = Some((ambient, prob));
        self
    }

    /// Advance one frame (`dt` seconds) and return the viewer for this
    /// frame: head tracks the current target loosely, gaze sweeps toward
    /// it with wander.
    pub fn step(&mut self, dt: f64, rng: &mut SimRng) -> Viewer {
        self.until_shift_s -= dt;
        if self.until_shift_s <= 0.0 {
            // Attention shift: usually to a participant, sometimes to the
            // shared-content window.
            let ambient_hit = match self.ambient {
                Some((_, prob)) => rng.chance(prob),
                None => false,
            };
            let next = if ambient_hit {
                usize::MAX // sentinel: ambient
            } else {
                rng.index(self.targets.len())
            };
            if next != self.current {
                self.sweep_from = self.last_gaze;
                self.sweep_left_s = SWEEP_S;
            }
            self.current = next;
            self.until_shift_s = rng.exponential(self.mean_dwell_s).max(0.2);
        }
        // Ornstein–Uhlenbeck-ish wander around the target direction.
        let pull = 4.0 * dt as f32;
        self.wander = Vec3::new(
            self.wander.x * (1.0 - pull) + rng.normal(0.0, 0.03) as f32 * (dt as f32).sqrt(),
            self.wander.y * (1.0 - pull) + rng.normal(0.0, 0.02) as f32 * (dt as f32).sqrt(),
            0.0,
        );
        let target = if self.current == usize::MAX {
            self.ambient.expect("sentinel implies ambient").0
        } else {
            self.targets[self.current]
        };
        let settled = (target + self.wander - Vec3::ZERO).normalized();
        // (head computed below follows the gaze closely: people turn
        // toward whom they look at, keeping the rest of the group inside
        // the headset's ~100° FOV most of the time.)
        let gaze_dir = if self.sweep_left_s > 0.0 {
            self.sweep_left_s -= dt;
            let progress = (1.0 - self.sweep_left_s / SWEEP_S).clamp(0.0, 1.0) as f32;
            (self.sweep_from * (1.0 - progress) + settled * progress).normalized()
        } else {
            settled
        };
        self.last_gaze = gaze_dir;
        // Head follows gaze with a slight lag (85% blend): the attended
        // persona centres in view while the rest land in the periphery.
        let head_dir = Vec3::new(
            gaze_dir.x * 0.85,
            gaze_dir.y * 0.85,
            gaze_dir.z,
        )
        .normalized();
        Viewer::looking(Vec3::ZERO, head_dir).with_gaze(gaze_dir)
    }

    /// Index of the currently attended target (`usize::MAX` while looking
    /// at the ambient shared-content window).
    pub fn current_target(&self) -> usize {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_positions_are_in_front_at_the_radius() {
        let pts = SeatingLayout::Arc.positions(4, 1.4);
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(p.z < 0.0, "persona behind the viewer: {p:?}");
            assert!((p.length() - 1.4).abs() < 1e-4);
        }
        // Spread left to right.
        assert!(pts[0].x < pts[3].x);
    }

    #[test]
    fn single_persona_sits_center() {
        let pts = SeatingLayout::Arc.positions(1, 1.0);
        assert!(pts[0].x.abs() < 1e-4);
        assert!((pts[0].z + 1.0).abs() < 1e-4);
    }

    #[test]
    fn line_layout_recedes() {
        let pts = SeatingLayout::Line.positions(4, 1.0);
        for w in pts.windows(2) {
            assert!(w[1].z < w[0].z);
            assert_eq!(w[0].x, 0.0);
        }
    }

    #[test]
    fn gaze_shifts_between_targets() {
        let targets = SeatingLayout::Arc.positions(4, 1.4);
        let mut g = GazeDynamics::new(targets);
        let mut rng = SimRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..(90 * 60) {
            g.step(1.0 / 90.0, &mut rng);
            seen.insert(g.current_target());
        }
        assert!(seen.len() >= 3, "gaze never moved: {seen:?}");
    }

    #[test]
    fn viewer_gaze_points_near_the_attended_persona() {
        let targets = SeatingLayout::Arc.positions(3, 1.4);
        let mut g = GazeDynamics::new(targets.clone());
        let mut rng = SimRng::seed_from_u64(2);
        let mut close = 0usize;
        let n = 900;
        for _ in 0..n {
            let v = g.step(1.0 / 90.0, &mut rng);
            let ecc = v.eccentricity_deg(&targets[g.current_target()]);
            if ecc < 10.0 {
                close += 1;
            }
        }
        assert!(close * 2 > n, "gaze mostly off-target: {close}/{n}");
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn rejects_empty_targets() {
        GazeDynamics::new(vec![]);
    }
}
