//! Property tests for the failover control plane.
//!
//! Three invariants the resilience layer must hold under seeded chaos:
//!
//! 1. [`SiteDirectory::candidate`] never hands out a site that is in the
//!    caller's dead list, observed `Down`, or sitting behind an open
//!    circuit breaker — across randomized up/down flips, probe cadences,
//!    and admission attempts.
//! 2. Session-level failover targets never name a killed site, with the
//!    legacy queue and with the full resilience layer, across chaos seeds.
//! 3. Reconnect backoff sequences are byte-identical at 1, 4, and 8
//!    worker threads: jitter comes from `derive_seed`, never from the
//!    schedule.

use std::collections::BTreeMap;
use visionsim_core::par::{self, derive_seed, par_map};
use visionsim_core::rng::SimRng;
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_device::device::DeviceKind;
use visionsim_geo::cities;
use visionsim_geo::sites::{Provider, SiteRegistry};
use visionsim_net::fault::FaultPlan;
use visionsim_net::probe::SiteHealth;
use visionsim_vca::server::{AdmissionVerdict, BackoffPolicy, ResilienceConfig, SiteDirectory};
use visionsim_vca::session::{SessionConfig, SessionRunner};
use visionsim_vca::AssignmentPolicy;

/// Chaos-drive a [`SiteDirectory`]: random ground-truth flips, the probe
/// cadence, and admission attempts that feed breakers. After every step
/// the candidate the directory hands out must be safe — not in the dead
/// list, not observed Down, and not behind an open breaker (tracked
/// through a shadow model of the open→half-open timers).
#[test]
fn candidate_never_selects_dead_or_breaker_open_site() {
    let registry = SiteRegistry::geo_distributed(Provider::FaceTime);
    let vantages = cities::us_vantages();
    let cfg = ResilienceConfig::default();
    let open_for = cfg.breaker.open_for;
    let tick = SimDuration::from_millis(100);

    for seed in 0..24u64 {
        let mut dir = SiteDirectory::new(&registry, Provider::FaceTime, cfg);
        let labels = dir.labels();
        let mut rng = SimRng::seed_from_u64(derive_seed(seed, "failover-props", 0));
        // Shadow model: label → deadline before which the breaker is
        // open. `candidate` half-opens an elapsed timer itself, so an
        // expired entry is no longer excluded.
        let mut open_until: BTreeMap<&'static str, SimTime> = BTreeMap::new();
        let mut opens_seen: BTreeMap<&'static str, u32> =
            labels.iter().map(|&l| (l, 0)).collect();
        let mut next_probe = SimTime::ZERO;

        for step in 0..400u64 {
            let now = SimTime::ZERO + tick * step;
            // ~10% of ticks flip one site's ground truth.
            if rng.chance(0.1) {
                let label = labels[rng.index(labels.len())];
                let up = rng.chance(0.5);
                dir.set_site_up(label, up);
            }
            while now >= next_probe {
                dir.probe_tick(next_probe);
                next_probe += cfg.probe_every;
            }
            // ~30% of ticks hammer a random site with an admission
            // attempt; attempts against ground-truth-down sites feed
            // that site's breaker.
            if rng.chance(0.3) {
                let label = labels[rng.index(labels.len())];
                let participant = rng.uniform_u64(0, 1 << 20);
                let verdict = dir.try_admit(label, 0, participant, now);
                let opens = dir.breaker_opens(label);
                if opens > opens_seen[label] {
                    opens_seen.insert(label, opens);
                    open_until.insert(label, now + open_for);
                }
                if verdict == AdmissionVerdict::Admitted {
                    // A successful trial closes the breaker.
                    open_until.remove(label);
                }
            }
            open_until.retain(|_, until| now < *until);

            // The caller's dead list: every ground-truth-down site (the
            // session engine passes exactly this knowledge).
            let dead: Vec<&str> = labels.iter().copied().filter(|&l| !dir.is_up(l)).collect();
            let anchor = vantages[rng.index(vantages.len())];
            if let Some(site) = dir.candidate(&anchor.location, &dead, now) {
                assert!(
                    !dead.contains(&site.label),
                    "seed {seed} step {step}: candidate {} is in the dead list",
                    site.label
                );
                assert_ne!(
                    dir.health(site.label),
                    SiteHealth::Down,
                    "seed {seed} step {step}: candidate {} observed Down",
                    site.label
                );
                assert!(
                    !open_until.contains_key(site.label),
                    "seed {seed} step {step}: candidate {} has an open breaker until {:?}",
                    site.label,
                    open_until.get(site.label)
                );
            }
        }
    }
}

/// A breaker opened against a zombie site keeps that site out of
/// candidate selection even after ground truth recovers — until the
/// deterministic open timer elapses into half-open.
#[test]
fn open_breaker_outlives_ground_truth_recovery() {
    let registry = SiteRegistry::geo_distributed(Provider::FaceTime);
    let cfg = ResilienceConfig::default();
    let mut dir = SiteDirectory::new(&registry, Provider::FaceTime, cfg);
    let sf = cities::US_WEST[0].location;
    let t0 = SimTime::from_secs(1);
    let west = dir
        .candidate(&sf, &[], SimTime::ZERO)
        .expect("an idle fleet always has a candidate")
        .label;

    // Kill the site but never probe: the observed view stays Healthy, so
    // only the breaker can protect reconnecting clients from the zombie.
    dir.set_site_up(west, false);
    for i in 0..cfg.breaker.failure_threshold {
        let v = dir.try_admit(west, 0, u64::from(i), t0);
        assert!(matches!(v, AdmissionVerdict::Rejected(_)), "{v:?}");
    }
    assert_eq!(dir.breaker_opens(west), 1, "threshold failures trip it");

    // Ground truth recovers immediately — the breaker must still hold.
    dir.set_site_up(west, true);
    let blocked = dir.candidate(&sf, &[], t0 + SimDuration::from_millis(100));
    assert_ne!(
        blocked.map(|s| s.label),
        Some(west),
        "open breaker must exclude the site"
    );
    // After `open_for` the timer half-opens and the site is a trial
    // candidate again.
    let retry_at = t0 + cfg.breaker.open_for;
    let trial = dir.candidate(&sf, &[], retry_at).expect("fleet is up");
    assert_eq!(trial.label, west, "half-open readmits the nearest site");
    assert_eq!(
        dir.try_admit(west, 0, 99, retry_at),
        AdmissionVerdict::Admitted,
        "successful trial closes the breaker"
    );
}

/// Build the staggered two-site outage used by the regression test in
/// `session.rs`, parameterized by seed and resilience mode.
fn staggered_outage_config(seed: u64, resilience: bool) -> SessionConfig {
    let mut cfg = SessionConfig::two_party(
        Provider::FaceTime,
        (DeviceKind::VisionPro, cities::US_WEST[0]),
        (DeviceKind::VisionPro, cities::US_EAST[0]),
        seed,
    );
    cfg.policy = AssignmentPolicy::GeoDistributed;
    cfg.duration = SimDuration::from_secs(10);
    cfg.fault_plans = vec![
        (
            0,
            FaultPlan::server_outage(
                SimTime::from_secs(1),
                SimDuration::from_secs(1),
                SimDuration::from_millis(500),
            ),
        ),
        (
            1,
            FaultPlan::server_outage(
                SimTime::from_secs(2),
                SimDuration::from_secs(1),
                SimDuration::from_millis(500),
            ),
        ),
    ];
    if resilience {
        cfg.resilience = Some(ResilienceConfig::default());
    }
    cfg
}

/// Across chaos seeds and both reattach implementations (legacy queue,
/// resilience layer), no failover ever lands on a killed site.
#[test]
fn failover_targets_never_name_a_killed_site_across_seeds() {
    for seed in [3u64, 11, 42, 77, 1_000, 65_535] {
        for resilience in [false, true] {
            let out = SessionRunner::new(staggered_outage_config(seed, resilience)).run();
            let initial: Vec<&str> = out
                .assignment
                .as_ref()
                .expect("SFU session has an assignment")
                .attachments
                .iter()
                .map(|s| s.label)
                .collect();
            assert_ne!(initial[0], initial[1], "seed {seed}: need distinct sites");
            assert!(
                !out.failovers.is_empty(),
                "seed {seed} resilience={resilience}: outages must trigger failovers"
            );
            for (_, label) in &out.failovers {
                assert!(
                    !initial.contains(&label.as_str()),
                    "seed {seed} resilience={resilience}: reattached to killed site {label}"
                );
            }
        }
    }
}

/// One participant's full backoff schedule: attempt delays in
/// nanoseconds, long enough to cross the exponential cap.
fn backoff_schedule(seed: u64, participant: u64) -> Vec<u64> {
    let policy = BackoffPolicy::default();
    let mut rng = SimRng::seed_from_u64(derive_seed(seed, "reconnect", participant));
    (0..12).map(|a| policy.delay(a, &mut rng).as_nanos()).collect()
}

/// Backoff jitter must come from `derive_seed(seed, "reconnect", p)` and
/// nothing else: the per-participant sequences are byte-identical whether
/// the fleet is computed on 1, 4, or 8 workers — and so is a full
/// resilience session's reconnect ledger.
#[test]
fn reconnect_backoff_is_byte_identical_across_thread_counts() {
    let _guard = par::override_guard();
    let participants: Vec<u64> = (0..48).collect();

    let mut baseline: Option<(String, String)> = None;
    for threads in [1usize, 4, 8] {
        par::set_threads(Some(threads));
        let schedules = format!(
            "{:?}",
            par_map(participants.clone(), |p| backoff_schedule(2024, p))
        );
        let out = SessionRunner::new(staggered_outage_config(7, true)).run();
        let ledger = format!("{:?} rejects={}", out.reconnects, out.admission_rejects);
        match &baseline {
            None => baseline = Some((schedules, ledger)),
            Some((s0, l0)) => {
                assert_eq!(&schedules, s0, "{threads} threads: backoff diverged");
                assert_eq!(&ledger, l0, "{threads} threads: reconnect ledger diverged");
            }
        }
    }
    par::set_threads(None);
}

/// Freshly seeded participants never share a jitter stream: adjacent
/// participants' schedules differ, the same participant replays
/// identically, and every delay stays inside the jitter envelope of the
/// capped exponential.
#[test]
fn backoff_streams_are_stable_and_participant_disjoint() {
    let a = backoff_schedule(9, 0);
    let b = backoff_schedule(9, 1);
    let a_again = backoff_schedule(9, 0);
    assert_eq!(a, a_again, "same (seed, participant) must replay");
    assert_ne!(a, b, "participants must not share a jitter stream");
    let policy = BackoffPolicy::default();
    for (i, &d) in a.iter().enumerate() {
        let nominal = policy
            .base
            .as_nanos()
            .saturating_mul(1u64 << i.min(32))
            .min(policy.cap.as_nanos()) as f64;
        let lo = nominal * (1.0 - policy.jitter_frac);
        let hi = nominal * (1.0 + policy.jitter_frac);
        assert!(
            (d as f64) >= lo - 1.0 && (d as f64) <= hi + 1.0,
            "attempt {i}: delay {d} outside jitter envelope [{lo}, {hi}]"
        );
    }
}
