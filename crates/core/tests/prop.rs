//! Randomized property tests for the core substrate.
//!
//! Each property is exercised over many deterministic, seed-derived cases
//! (the registry is offline, so the harness is a plain loop over
//! `SimRng`-generated inputs instead of proptest).

use visionsim_core::event::EventQueue;
use visionsim_core::par::derive_seed;
use visionsim_core::rng::SimRng;
use visionsim_core::stats::{Percentiles, StreamingStats};
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::{ByteSize, DataRate};

const CASES: u64 = 128;

fn case_rng(label: &str, i: u64) -> SimRng {
    SimRng::seed_from_u64(derive_seed(0xC04E_0001, label, i))
}

fn vec_f64(rng: &mut SimRng, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let n = rng.uniform_u64(min_len as u64, max_len as u64) as usize;
    (0..n).map(|_| rng.uniform_range(lo, hi)).collect()
}

/// Percentiles are monotone in p and bounded by min/max.
#[test]
fn percentiles_monotone() {
    for i in 0..CASES {
        let mut rng = case_rng("percentiles_monotone", i);
        let samples = vec_f64(&mut rng, -1e9, 1e9, 1, 200);
        let mut p = Percentiles::from_samples(samples.clone());
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 5.0, 25.0, 50.0, 75.0, 95.0, 100.0] {
            let v = p.percentile(q);
            assert!(v >= last - 1e-9, "non-monotone at {q}");
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            last = v;
        }
    }
}

/// Welford streaming stats agree with the two-pass computation.
#[test]
fn streaming_stats_match_two_pass() {
    for i in 0..CASES {
        let mut rng = case_rng("streaming_two_pass", i);
        let samples = vec_f64(&mut rng, -1e6, 1e6, 2, 200);
        let mut s = StreamingStats::new();
        for &x in &samples {
            s.push(x);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        assert!((s.std_dev() - var.sqrt()).abs() < 1e-5 * (1.0 + var.sqrt()));
    }
}

/// Merging two accumulators equals accumulating the concatenation.
#[test]
fn streaming_merge_is_concatenation() {
    for i in 0..CASES {
        let mut rng = case_rng("streaming_merge", i);
        let a = vec_f64(&mut rng, -1e6, 1e6, 1, 100);
        let b = vec_f64(&mut rng, -1e6, 1e6, 1, 100);
        let mut sa = StreamingStats::new();
        for &x in &a {
            sa.push(x);
        }
        let mut sb = StreamingStats::new();
        for &x in &b {
            sb.push(x);
        }
        let mut all = StreamingStats::new();
        for &x in a.iter().chain(&b) {
            all.push(x);
        }
        sa.merge(&sb);
        assert_eq!(sa.count(), all.count());
        assert!((sa.mean() - all.mean()).abs() < 1e-6 * (1.0 + all.mean().abs()));
        assert!((sa.std_dev() - all.std_dev()).abs() < 1e-5 * (1.0 + all.std_dev()));
    }
}

/// The event queue pops every scheduled event exactly once, in
/// non-decreasing time order, with FIFO tie-breaking.
#[test]
fn event_queue_total_order() {
    for i in 0..CASES {
        let mut rng = case_rng("event_queue_order", i);
        let n = rng.uniform_u64(1, 300) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.uniform_u64(0, 999)).collect();
        let mut q = EventQueue::new();
        for (k, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), k);
        }
        let mut popped = Vec::new();
        let mut last = (SimTime::ZERO, 0usize);
        while let Some(ev) = q.pop() {
            assert!(ev.at >= last.0, "time went backwards");
            if ev.at == last.0 && !popped.is_empty() {
                assert!(ev.payload > last.1, "FIFO tie-break violated");
            }
            last = (ev.at, ev.payload);
            popped.push(ev.payload);
        }
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..times.len()).collect::<Vec<_>>());
    }
}

/// transmit_time and bytes_in are mutually consistent.
#[test]
fn rate_time_size_consistency() {
    for i in 0..CASES {
        let mut rng = case_rng("rate_time_size", i);
        let mbps = rng.uniform_u64(1, 9_999);
        let kb = rng.uniform_u64(1, 99_999);
        let rate = DataRate::from_mbps(mbps);
        let size = ByteSize::from_kb(kb);
        let t = rate.transmit_time(size).expect("positive rate");
        let back = rate.bytes_in(t);
        // Rounding to nanoseconds loses at most a few bytes.
        let diff = size.as_bytes().abs_diff(back.as_bytes());
        assert!(diff <= 1 + rate.as_bps() / 8 / 1_000_000, "diff {diff}");
    }
}

/// Duration arithmetic: (a + b) - b == a.
#[test]
fn duration_add_sub_inverse() {
    for i in 0..CASES {
        let mut rng = case_rng("duration_inverse", i);
        let a = rng.uniform_u64(0, u32::MAX as u64 - 1);
        let b = rng.uniform_u64(0, u32::MAX as u64 - 1);
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        assert_eq!((da + db) - db, da);
    }
}
