//! Property-based tests for the core substrate.

use proptest::prelude::*;
use visionsim_core::event::EventQueue;
use visionsim_core::stats::{Percentiles, StreamingStats};
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_core::units::{ByteSize, DataRate};

proptest! {
    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_monotone(samples in prop::collection::vec(-1e9f64..1e9, 1..200)) {
        let mut p = Percentiles::from_samples(samples.clone());
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 5.0, 25.0, 50.0, 75.0, 95.0, 100.0] {
            let v = p.percentile(q);
            prop_assert!(v >= last - 1e-9, "non-monotone at {q}");
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            last = v;
        }
    }

    /// Welford streaming stats agree with the two-pass computation.
    #[test]
    fn streaming_stats_match_two_pass(samples in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut s = StreamingStats::new();
        for &x in &samples {
            s.push(x);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / (samples.len() - 1) as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.std_dev() - var.sqrt()).abs() < 1e-5 * (1.0 + var.sqrt()));
    }

    /// Merging two accumulators equals accumulating the concatenation.
    #[test]
    fn streaming_merge_is_concatenation(
        a in prop::collection::vec(-1e6f64..1e6, 1..100),
        b in prop::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        let mut sa = StreamingStats::new();
        for &x in &a { sa.push(x); }
        let mut sb = StreamingStats::new();
        for &x in &b { sb.push(x); }
        let mut all = StreamingStats::new();
        for &x in a.iter().chain(&b) { all.push(x); }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), all.count());
        prop_assert!((sa.mean() - all.mean()).abs() < 1e-6 * (1.0 + all.mean().abs()));
        prop_assert!((sa.std_dev() - all.std_dev()).abs() < 1e-5 * (1.0 + all.std_dev()));
    }

    /// The event queue pops every scheduled event exactly once, in
    /// non-decreasing time order, with FIFO tie-breaking.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        let mut last = (SimTime::ZERO, 0usize);
        while let Some(ev) = q.pop() {
            prop_assert!(ev.at >= last.0, "time went backwards");
            if ev.at == last.0 && !popped.is_empty() {
                prop_assert!(ev.payload > last.1, "FIFO tie-break violated");
            }
            last = (ev.at, ev.payload);
            popped.push(ev.payload);
        }
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..times.len()).collect::<Vec<_>>());
    }

    /// transmit_time and bytes_in are mutually consistent.
    #[test]
    fn rate_time_size_consistency(mbps in 1u64..10_000, kb in 1u64..100_000) {
        let rate = DataRate::from_mbps(mbps);
        let size = ByteSize::from_kb(kb);
        let t = rate.transmit_time(size).expect("positive rate");
        let back = rate.bytes_in(t);
        // Rounding to nanoseconds loses at most a few bytes.
        let diff = size.as_bytes().abs_diff(back.as_bytes());
        prop_assert!(diff <= 1 + rate.as_bps() / 8 / 1_000_000, "diff {diff}");
    }

    /// Duration arithmetic: (a + b) - b == a.
    #[test]
    fn duration_add_sub_inverse(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db) - db, da);
    }
}
