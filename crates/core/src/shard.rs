//! Conservative parallel discrete-event simulation (PDES) over sharded
//! event queues.
//!
//! The fleet-scale workloads (100k+ concurrent sessions) cannot funnel
//! through one [`crate::event::EventQueue`]: a single heap serializes the
//! whole simulation onto one core. This module partitions the world into
//! *shards* — each owning its own queue and state — and synchronizes them
//! with the classic conservative-lookahead protocol (Chandy–Misra–Bryant
//! flavored, barrier-stepped):
//!
//! 1. Compute the global *floor*: the earliest pending event time across
//!    every shard queue and every in-flight cross-shard envelope.
//! 2. Advance every shard independently (in parallel) to the *horizon*
//!    `min(floor + lookahead − 1ns, end)`.
//! 3. Barrier; exchange the cross-shard envelopes produced in step 2.
//!
//! Safety argument: every cross-shard message takes at least `lookahead`
//! of link latency (enforced by the sanitizer on every routed envelope),
//! so a message *sent* inside the window `[floor, floor + L − 1]` is
//! *delivered* at `≥ floor + L`, strictly after the horizon. No shard can
//! therefore receive an event in its past, and `EventQueue::schedule`'s
//! monotonicity panic doubles as a hard backstop.
//!
//! Determinism argument (byte-identical at any thread count AND any shard
//! count): the floor/horizon sequence is a global property independent of
//! the partition; shard state is partitioned by *site*, never shared;
//! every site-to-site message is routed through the barrier even when
//! source and destination happen to live in the same shard; and each
//! shard sorts its ingress by `(deliver_at, src_site, src_seq)` before
//! delivery. Per-site event order is thus invariant.

use crate::metrics::{self, Class};
use crate::par;
use crate::sanitizer;
use crate::time::{SimDuration, SimTime};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// A cross-shard message in flight between two sites.
///
/// The `(deliver_at, src_site, src_seq)` triple is a total order over all
/// envelopes ever addressed to one site, which is what makes ingress
/// delivery deterministic regardless of which shard (or worker) produced
/// them, in which round, in which order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Virtual time the source site emitted the message.
    pub sent_at: SimTime,
    /// Virtual time the destination site must see it (≥ `sent_at` + link
    /// latency ≥ `sent_at` + lookahead).
    pub deliver_at: SimTime,
    /// Emitting site index.
    pub src_site: u32,
    /// Destination site index.
    pub dst_site: u32,
    /// Per-source-site monotone sequence number (deterministic tiebreak).
    pub src_seq: u64,
    /// Payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// The deterministic ingress sort key.
    pub fn order_key(&self) -> (SimTime, u32, u64) {
        (self.deliver_at, self.src_site, self.src_seq)
    }
}

/// One shard of the simulated world, owning the state of one or more
/// sites plus a private event queue.
pub trait ShardWorld: Send {
    /// Cross-shard message payload.
    type Msg: Send;

    /// Earliest pending local event, if any. Consulted by the engine to
    /// compute the global floor; must not mutate state.
    fn next_event(&self) -> Option<SimTime>;

    /// Accept one cross-shard envelope. Envelopes arrive in
    /// `(deliver_at, src_site, src_seq)` order and always satisfy
    /// `deliver_at` > the shard's current clock.
    fn deliver(&mut self, env: Envelope<Self::Msg>);

    /// Process every local event with time ≤ `horizon`, pushing any
    /// cross-site messages produced onto `out`. Implementations must not
    /// deliver site-to-site messages locally — even when both sites live
    /// in this shard — or shard-count invariance breaks.
    fn advance(&mut self, horizon: SimTime, out: &mut Vec<Envelope<Self::Msg>>);
}

/// What one `run_until` did, for reporting in artifacts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Barrier rounds executed (lookahead windows).
    pub rounds: u64,
    /// Cross-site envelopes routed through the barrier.
    pub messages: u64,
}

struct Slot<W: ShardWorld> {
    world: W,
    inbox: Vec<Envelope<W::Msg>>,
    outbox: Vec<Envelope<W::Msg>>,
}

/// The conservative-PDES engine: a set of shards, a site→shard map, and
/// the lookahead that makes windowed parallel advancement safe.
pub struct ConservativeEngine<W: ShardWorld> {
    slots: Vec<Mutex<Slot<W>>>,
    site_shard: Vec<usize>,
    lookahead: SimDuration,
}

impl<W: ShardWorld> ConservativeEngine<W> {
    /// Build an engine over `worlds`. `site_shard[s]` names the shard
    /// hosting site `s`; `lookahead` must be positive and no larger than
    /// the minimum inter-site link latency (the sanitizer checks the
    /// latter on every routed envelope).
    pub fn new(worlds: Vec<W>, site_shard: Vec<usize>, lookahead: SimDuration) -> Self {
        assert!(!worlds.is_empty(), "engine needs at least one shard");
        assert!(
            lookahead > SimDuration::ZERO,
            "conservative PDES requires positive lookahead"
        );
        let n = worlds.len();
        for (site, &shard) in site_shard.iter().enumerate() {
            assert!(shard < n, "site {site} mapped to nonexistent shard {shard}");
        }
        let slots = worlds
            .into_iter()
            .map(|world| {
                Mutex::new(Slot {
                    world,
                    inbox: Vec::new(),
                    outbox: Vec::new(),
                })
            })
            .collect();
        ConservativeEngine {
            slots,
            site_shard,
            lookahead,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// Tear down and hand back the worlds, in shard order.
    pub fn into_worlds(self) -> Vec<W> {
        self.slots
            .into_iter()
            .map(|m| m.into_inner().expect("no shard worker panicked").world)
            .collect()
    }

    /// Run every shard to `end` (inclusive), exchanging cross-shard
    /// envelopes at each lookahead window. Uses up to
    /// [`par::threads()`] persistent workers; output is byte-identical at
    /// any worker count.
    pub fn run_until(&mut self, end: SimTime) -> EngineReport {
        let n = self.slots.len();
        let workers = par::threads().min(n).max(1);

        // Next-event times, one atomic per shard, u64::MAX = idle.
        // Seeded here; republished by whichever worker advanced the shard.
        let next: Vec<AtomicU64> = self
            .slots
            .iter_mut()
            .map(|slot| {
                let world = &slot.get_mut().expect("unpoisoned").world;
                AtomicU64::new(world.next_event().map_or(u64::MAX, SimTime::as_nanos))
            })
            .collect();

        let report = if workers <= 1 {
            self.run_rounds_inline(end, &next)
        } else {
            self.run_rounds_pooled(end, &next, workers)
        };

        metrics::counter("shard/barrier_rounds", Class::Sim).add(report.rounds);
        metrics::counter("shard/xsite_msgs", Class::Sim).add(report.messages);
        report
    }

    /// Single-worker path: same round structure, no pool, no locking
    /// overhead beyond the uncontended mutexes.
    fn run_rounds_inline(&mut self, end: SimTime, next: &[AtomicU64]) -> EngineReport {
        let n = self.slots.len();
        let mut inbox_min = vec![u64::MAX; n];
        let mut report = EngineReport::default();
        while let Some(horizon) = next_horizon(next, &inbox_min, self.lookahead, end) {
            for (i, slot) in self.slots.iter_mut().enumerate() {
                let slot = slot.get_mut().expect("unpoisoned");
                process_shard(slot, horizon);
                next[i].store(
                    slot.world.next_event().map_or(u64::MAX, SimTime::as_nanos),
                    Ordering::Relaxed,
                );
            }
            inbox_min.iter_mut().for_each(|m| *m = u64::MAX);
            report.messages += route_round(
                &self.slots,
                &self.site_shard,
                self.lookahead,
                horizon,
                &mut inbox_min,
            );
            report.rounds += 1;
        }
        report
    }

    /// Parallel path: a persistent pool of `workers` threads stepped by a
    /// shared barrier, two waits per round. Shard `i` is always advanced
    /// by worker `i % workers`, so no shard is ever touched by two
    /// workers in one round; the coordinator alone routes envelopes, in
    /// shard-index order, keeping the exchange deterministic.
    fn run_rounds_pooled(&mut self, end: SimTime, next: &[AtomicU64], workers: usize) -> EngineReport {
        let n = self.slots.len();
        let slots = &self.slots;
        let barrier = Barrier::new(workers + 1);
        let horizon_ns = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let poisoned = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for w in 0..workers {
                let barrier = &barrier;
                let horizon_ns = &horizon_ns;
                let done = &done;
                let poisoned = &poisoned;
                scope.spawn(move || loop {
                    barrier.wait(); // A: round begins (or shutdown).
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    let horizon = SimTime::from_nanos(horizon_ns.load(Ordering::Acquire));
                    let mut i = w;
                    while i < n {
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            let mut slot = slots[i].lock().expect("unpoisoned");
                            process_shard(&mut slot, horizon);
                            slot.world.next_event().map_or(u64::MAX, SimTime::as_nanos)
                        }));
                        match outcome {
                            Ok(t) => next[i].store(t, Ordering::Release),
                            Err(_) => poisoned.store(true, Ordering::Release),
                        }
                        i += workers;
                    }
                    barrier.wait(); // B: round's shard work complete.
                });
            }

            let mut inbox_min = vec![u64::MAX; n];
            let mut report = EngineReport::default();
            let mut failure: Option<&'static str> = None;
            while let Some(horizon) = next_horizon(next, &inbox_min, self.lookahead, end) {
                horizon_ns.store(horizon.as_nanos(), Ordering::Release);
                barrier.wait(); // A
                barrier.wait(); // B
                if poisoned.load(Ordering::Acquire) {
                    failure = Some("a shard worker panicked mid-round");
                    break;
                }
                inbox_min.iter_mut().for_each(|m| *m = u64::MAX);
                report.messages += route_round(
                    slots,
                    &self.site_shard,
                    self.lookahead,
                    horizon,
                    &mut inbox_min,
                );
                report.rounds += 1;
            }
            done.store(true, Ordering::Release);
            barrier.wait(); // release workers into shutdown
            if let Some(msg) = failure {
                resume_unwind(Box::new(msg));
            }
            report
        })
    }
}

/// Global floor → horizon for the next round, or `None` when every queue
/// and inbox is drained past `end`.
fn next_horizon(
    next: &[AtomicU64],
    inbox_min: &[u64],
    lookahead: SimDuration,
    end: SimTime,
) -> Option<SimTime> {
    let queue_floor = next.iter().map(|t| t.load(Ordering::Acquire)).min();
    let inbox_floor = inbox_min.iter().copied().min();
    let floor = queue_floor
        .into_iter()
        .chain(inbox_floor)
        .min()
        .unwrap_or(u64::MAX);
    if floor == u64::MAX || floor > end.as_nanos() {
        return None;
    }
    let window_end = SimTime::from_nanos(floor)
        .saturating_add(lookahead)
        .as_nanos()
        .saturating_sub(1);
    Some(SimTime::from_nanos(window_end.min(end.as_nanos())))
}

/// One shard's round: sorted ingress delivery, then local advancement.
fn process_shard<W: ShardWorld>(slot: &mut Slot<W>, horizon: SimTime) {
    let Slot {
        world,
        inbox,
        outbox,
    } = slot;
    inbox.sort_by_key(Envelope::order_key);
    for env in inbox.drain(..) {
        world.deliver(env);
    }
    world.advance(horizon, outbox);
}

/// Move every outbox envelope to its destination shard's inbox, in shard
/// index order (deterministic), checking the causality identities and
/// tracking the earliest pending delivery per destination shard.
fn route_round<W: ShardWorld>(
    slots: &[Mutex<Slot<W>>],
    site_shard: &[usize],
    lookahead: SimDuration,
    horizon: SimTime,
    inbox_min: &mut [u64],
) -> u64 {
    let mut moved = 0u64;
    for i in 0..slots.len() {
        let mut outbox = {
            let mut slot = slots[i].lock().expect("unpoisoned");
            std::mem::take(&mut slot.outbox)
        };
        for env in outbox.drain(..) {
            sanitizer::check(
                env.deliver_at >= env.sent_at.saturating_add(lookahead),
                "shard/causality",
                || {
                    format!(
                        "envelope {} -> {} delivers {} ns after send, below lookahead {} ns",
                        env.src_site,
                        env.dst_site,
                        env.deliver_at.since(env.sent_at).as_nanos(),
                        lookahead.as_nanos()
                    )
                },
            );
            sanitizer::check(env.deliver_at > horizon, "shard/causality", || {
                format!(
                    "envelope {} -> {} delivers at {} ns, inside the closed window ending {} ns",
                    env.src_site,
                    env.dst_site,
                    env.deliver_at.as_nanos(),
                    horizon.as_nanos()
                )
            });
            let dst = site_shard[env.dst_site as usize];
            inbox_min[dst] = inbox_min[dst].min(env.deliver_at.as_nanos());
            slots[dst].lock().expect("unpoisoned").inbox.push(env);
            moved += 1;
        }
        // Hand the drained buffer back so its capacity is reused.
        slots[i].lock().expect("unpoisoned").outbox = outbox;
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventQueue, ScratchBatch};

    /// Toy world: sites pass a token around a ring with a fixed one-way
    /// latency; each site stamps the token with its hop count.
    struct RingShard {
        sites: Vec<u32>,       // site ids owned by this shard
        n_sites: u32,          // ring size
        latency: SimDuration,  // one-way link latency
        queue: EventQueue<(u32, u64)>, // (site, hops)
        seq: Vec<u64>,         // per-site egress sequence, indexed by local pos
        log: Vec<(u64, u32, u64)>, // (time_ns, site, hops)
        max_hops: u64,
        scratch: ScratchBatch<(u32, u64)>,
    }

    impl RingShard {
        fn new(sites: Vec<u32>, n_sites: u32, latency: SimDuration, max_hops: u64) -> Self {
            RingShard {
                sites,
                n_sites,
                latency,
                queue: EventQueue::new(),
                seq: Vec::new(),
                log: Vec::new(),
                max_hops,
                scratch: ScratchBatch::new(),
            }
        }
    }

    impl ShardWorld for RingShard {
        type Msg = u64; // hop count

        fn next_event(&self) -> Option<SimTime> {
            self.queue.peek_time()
        }

        fn deliver(&mut self, env: Envelope<u64>) {
            assert!(
                self.sites.contains(&env.dst_site),
                "envelope routed to wrong shard"
            );
            self.queue.schedule(env.deliver_at, (env.dst_site, env.msg));
        }

        fn advance(&mut self, horizon: SimTime, out: &mut Vec<Envelope<u64>>) {
            while self.queue.drain_due_into(horizon, &mut self.scratch) > 0 {
                for k in 0..self.scratch.len() {
                    let at = self.scratch.at(k);
                    let (site, hops) = *self.scratch.payload(k);
                    self.log.push((at.as_nanos(), site, hops));
                    if hops >= self.max_hops {
                        continue;
                    }
                    let local = self.sites.iter().position(|&s| s == site).unwrap();
                    if self.seq.len() <= local {
                        self.seq.resize(local + 1, 0);
                    }
                    let dst = (site + 1) % self.n_sites;
                    self.seq[local] += 1;
                    out.push(Envelope {
                        sent_at: at,
                        deliver_at: at.saturating_add(self.latency),
                        src_site: site,
                        dst_site: dst,
                        src_seq: self.seq[local],
                        msg: hops + 1,
                    });
                }
            }
        }
    }

    fn run_ring(n_sites: u32, n_shards: usize, latency_ns: u64, max_hops: u64) -> Vec<(u64, u32, u64)> {
        let latency = SimDuration::from_nanos(latency_ns);
        let site_shard: Vec<usize> = (0..n_sites as usize).map(|s| s % n_shards).collect();
        let mut worlds: Vec<RingShard> = (0..n_shards)
            .map(|sh| {
                let mine: Vec<u32> = (0..n_sites).filter(|&s| s as usize % n_shards == sh).collect();
                RingShard::new(mine, n_sites, latency, max_hops)
            })
            .collect();
        // Kick off one token at site 0, t = 1 ms.
        worlds[0]
            .queue
            .schedule(SimTime::from_millis(1), (0, 0));
        let mut engine = ConservativeEngine::new(worlds, site_shard, latency);
        let report = engine.run_until(SimTime::from_secs(10));
        assert!(report.rounds > 0, "the ring must take at least one round");
        let mut log: Vec<(u64, u32, u64)> = engine
            .into_worlds()
            .into_iter()
            .flat_map(|w| w.log)
            .collect();
        log.sort_unstable();
        log
    }

    #[test]
    fn ring_token_visits_every_site_in_order() {
        let log = run_ring(5, 2, 1_000_000, 12);
        assert_eq!(log.len(), 13, "token observed once per hop plus origin");
        for (k, &(t, site, hops)) in log.iter().enumerate() {
            assert_eq!(hops, k as u64);
            assert_eq!(site, (k as u32) % 5);
            assert_eq!(t, 1_000_000 + k as u64 * 1_000_000);
        }
    }

    #[test]
    fn shard_and_thread_count_do_not_change_the_event_order() {
        let _guard = par::override_guard();
        let baseline = run_ring(7, 1, 250_000, 40);
        for shards in [2usize, 3, 7] {
            for threads in [1usize, 4, 8] {
                par::set_threads(Some(threads));
                let log = run_ring(7, shards, 250_000, 40);
                assert_eq!(
                    log, baseline,
                    "{shards} shards x {threads} threads diverged from 1x1"
                );
            }
        }
        par::set_threads(None);
    }

    #[test]
    fn causality_all_deliveries_respect_lookahead() {
        sanitizer::force(Some(true));
        sanitizer::reset();
        let log = run_ring(6, 3, 500_000, 30);
        assert_eq!(
            sanitizer::total(),
            0,
            "causality identities must hold: {:?}",
            sanitizer::take()
        );
        assert!(!log.is_empty());
        sanitizer::force(None);
        sanitizer::reset();
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_is_rejected() {
        let world = RingShard::new(vec![0], 1, SimDuration::ZERO, 1);
        let _ = ConservativeEngine::new(vec![world], vec![0], SimDuration::ZERO);
    }

    #[test]
    fn idle_engine_terminates_immediately() {
        let world = RingShard::new(vec![0], 1, SimDuration::from_millis(1), 1);
        let mut engine =
            ConservativeEngine::new(vec![world], vec![0], SimDuration::from_millis(1));
        let report = engine.run_until(SimTime::from_secs(1));
        assert_eq!(report, EngineReport::default());
    }
}
