//! Deterministic parallel execution for the experiment harness.
//!
//! The paper's methodology is ≥5 independent repeats per cell — every cell
//! is a pure function of its config and seed, so the suite is
//! embarrassingly parallel. [`par_map`] fans independent work items across
//! `available_parallelism()` OS threads (scoped, no dependencies) and
//! returns results **in submission order**, so a parallel run is
//! bit-identical to a sequential one as long as each item derives its own
//! RNG stream via [`derive_seed`] instead of sharing a generator.
//!
//! # Supervision
//!
//! [`try_par_map`] is the supervised variant: every cell runs under
//! `catch_unwind` with a wall-clock watchdog. A panicking or overrunning
//! cell is retried once with the identical input (and therefore the
//! identical derived seed — cells are pure functions of config and seed);
//! if it fails again it is **quarantined**: the cell yields a structured
//! [`CellError`] while every other cell runs to completion. [`par_map`]
//! keeps its historical signature as a wrapper over the same engine that
//! propagates the first quarantined error as a panic.
//!
//! The watchdog is detection, not preemption: Rust cannot cancel a thread,
//! so a cell that overruns its budget is marked quarantined (its eventual
//! result, if any, is discarded) and the pool's other workers keep
//! draining cells — but a cell that literally never returns will still
//! block the final join. True kill semantics require process isolation,
//! which is out of scope for an in-process harness.
//!
//! Thread count resolution, highest priority first:
//! 1. a programmatic override set with [`set_threads`] (used by the
//!    determinism tests to compare single- and multi-threaded runs inside
//!    one process),
//! 2. the `VISIONSIM_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use crate::rng::splitmix64;
use crate::sanitizer;
use crate::trace::{self, TraceKind};
use crate::{metrics, metrics::Class};

/// Cached handles into the metrics registry; obtained once so the cell
/// loop never takes the registry lock.
struct ParMetrics {
    cells: metrics::Counter,
    retries: metrics::Counter,
    quarantined: metrics::Counter,
    cell_wall_ns: metrics::Histogram,
}

fn par_metrics() -> &'static ParMetrics {
    static M: OnceLock<ParMetrics> = OnceLock::new();
    M.get_or_init(|| ParMetrics {
        cells: metrics::counter("par/cells", Class::Sim),
        retries: metrics::counter("par/retries", Class::Sim),
        quarantined: metrics::counter("par/quarantined", Class::Sim),
        cell_wall_ns: metrics::histogram("par/cell_wall_ns", Class::Wall),
    })
}

/// Flight-recorder entry for a cell lifecycle moment. Wall-clock
/// timestamps: supervision has no virtual clock.
fn trace_cell(kind: TraceKind, label: &str, seed: u64, b: u64) {
    if trace::enabled() {
        trace::record(kind, trace::wall_ns(), trace::intern(label), seed, b, 0);
    }
}

/// Programmatic thread-count override; 0 means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Serializes tests (and any other callers) that flip the process-global
/// overrides in this module or [`crate::sanitizer`].
static OVERRIDE_GUARD: Mutex<()> = Mutex::new(());

/// Lock out other threads from toggling the process-global overrides.
///
/// [`set_threads`] and [`sanitizer::force`] mutate **process-global**
/// state: under the default concurrent libtest runner, one test's
/// override is visible to every other test in the binary. Tests that set
/// either override (or that assert on behaviour the overrides change)
/// must hold this guard for their whole body.
pub fn override_guard() -> MutexGuard<'static, ()> {
    OVERRIDE_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// Force the worker count for subsequent [`par_map`] calls in this process
/// (`None` restores env/hardware resolution). Takes precedence over
/// `VISIONSIM_THREADS`.
///
/// The override is **process-global**, not scoped: concurrent tests in one
/// binary race on it unless they serialize behind [`override_guard`].
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The worker count [`par_map`] will use right now.
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("VISIONSIM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The per-cell wall-clock budget the watchdog enforces, from
/// `VISIONSIM_CELL_TIMEOUT_SECS` (default 600 s — generous, because a
/// cell is a whole experiment repetition, not one packet).
pub fn cell_timeout() -> Duration {
    static TIMEOUT: OnceLock<Duration> = OnceLock::new();
    *TIMEOUT.get_or_init(|| {
        let secs = std::env::var("VISIONSIM_CELL_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&s| s > 0)
            .unwrap_or(600);
        Duration::from_secs(secs)
    })
}

/// Derive a collision-free child seed for one experiment cell.
///
/// XOR-offset schemes (`seed ^ ((r + 1) * 7919)`) correlate streams across
/// cells: two cells whose offsets collide share an entire stream, and even
/// distinct offsets leave most state bits identical. This instead chains
/// three SplitMix64 finalizer passes — over the root, a hash of the label,
/// and the index — so every (root, label, index) triple lands in an
/// independent region of seed space with full avalanche.
pub fn derive_seed(root: u64, label: &str, index: u64) -> u64 {
    // FNV-1a over the label, so "figure4/F*" and "figure4/Z" diverge.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut st = root;
    let a = splitmix64(&mut st);
    let mut st = a ^ h;
    let b = splitmix64(&mut st);
    let mut st = b ^ index;
    splitmix64(&mut st)
}

/// One supervised work item: the input plus the identity a failure report
/// needs to be actionable.
#[derive(Clone, Debug)]
pub struct Cell<I> {
    /// Human-readable cell label (e.g. `"figure6/users=4"`).
    pub label: String,
    /// The cell's derived seed (zero when seeding is not meaningful).
    pub seed: u64,
    /// The input handed to the map function.
    pub input: I,
}

impl<I> Cell<I> {
    /// Build a cell.
    pub fn new(label: impl Into<String>, seed: u64, input: I) -> Self {
        Cell {
            label: label.into(),
            seed,
            input,
        }
    }
}

/// How a quarantined cell failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellFailure {
    /// Both attempts panicked.
    Panicked,
    /// The cell overran its wall-clock budget.
    TimedOut,
}

/// A quarantined cell: both the attempt and its retry failed.
#[derive(Clone, Debug)]
pub struct CellError {
    /// The cell's label.
    pub label: String,
    /// The cell's derived seed — rerun `<binary> <seed>` to reproduce.
    pub seed: u64,
    /// Wall-clock spent in the failing attempt.
    pub elapsed: Duration,
    /// The panic payload (or a timeout description).
    pub payload: String,
    /// Panic vs watchdog timeout.
    pub kind: CellFailure,
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            CellFailure::Panicked => "panicked",
            CellFailure::TimedOut => "timed out",
        };
        write!(
            f,
            "cell {} (seed {}) {} after {:.2}s: {}",
            self.label,
            self.seed,
            kind,
            self.elapsed.as_secs_f64(),
            self.payload
        )
    }
}

impl std::error::Error for CellError {}

fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One `catch_unwind`-wrapped attempt with the sanitizer context tagged.
fn attempt<I, T>(cell: &Cell<I>, f: &(impl Fn(&Cell<I>) -> T + Sync)) -> Result<T, String> {
    sanitizer::set_context(&cell.label, cell.seed);
    let out = catch_unwind(AssertUnwindSafe(|| f(cell))).map_err(payload_string);
    sanitizer::clear_context();
    out
}

/// Run one supervised cell inline: `catch_unwind`, retried once on panic
/// with the identical input/seed, quarantined on the second failure. This
/// is the same supervision [`try_par_map`] applies per cell, minus the
/// watchdog (a single inline cell cannot preempt itself).
pub fn run_cell<I, T>(cell: &Cell<I>, f: impl Fn(&Cell<I>) -> T + Sync) -> Result<T, CellError> {
    run_cell_inner(cell, &f, true)
}

fn run_cell_inner<I, T>(
    cell: &Cell<I>,
    f: &(impl Fn(&Cell<I>) -> T + Sync),
    retry: bool,
) -> Result<T, CellError> {
    let start = Instant::now();
    trace_cell(TraceKind::CellStart, &cell.label, cell.seed, 0);
    par_metrics().cells.inc();
    let outcome = match attempt(cell, f) {
        Ok(t) => {
            par_metrics().cell_wall_ns.observe(start.elapsed().as_nanos() as u64);
            return Ok(t);
        }
        Err(first) if !retry => Err(first),
        Err(_first) => {
            trace_cell(TraceKind::CellRetry, &cell.label, cell.seed, 0);
            par_metrics().retries.inc();
            attempt(cell, f)
        }
    };
    par_metrics().cell_wall_ns.observe(start.elapsed().as_nanos() as u64);
    outcome.map_err(|payload| {
        trace_cell(TraceKind::CellQuarantine, &cell.label, cell.seed, 0);
        par_metrics().quarantined.inc();
        CellError {
            label: cell.label.clone(),
            seed: cell.seed,
            elapsed: start.elapsed(),
            payload,
            kind: CellFailure::Panicked,
        }
    })
}

/// Per-cell slot state shared between workers and the watchdog.
enum Slot<T> {
    Pending,
    Done(T),
    Failed(CellError),
}

/// Supervised parallel map: every cell runs under `catch_unwind` with a
/// wall-clock watchdog, is retried once on failure with the identical
/// input (hence the identical derived seed), and is quarantined into a
/// [`CellError`] only if it fails twice — while every other cell runs to
/// completion. Results arrive in submission order.
///
/// Uses the default [`cell_timeout`] budget; see [`try_par_map_with`] to
/// set one explicitly.
pub fn try_par_map<I, T, F>(cells: Vec<Cell<I>>, f: F) -> Vec<Result<T, CellError>>
where
    I: Send + Sync,
    T: Send,
    F: Fn(&Cell<I>) -> T + Sync,
{
    try_par_map_with(cells, cell_timeout(), f)
}

/// [`try_par_map`] with an explicit per-cell wall-clock budget.
pub fn try_par_map_with<I, T, F>(
    cells: Vec<Cell<I>>,
    budget: Duration,
    f: F,
) -> Vec<Result<T, CellError>>
where
    I: Send + Sync,
    T: Send,
    F: Fn(&Cell<I>) -> T + Sync,
{
    supervise(cells, budget, true, f)
}

/// The supervised engine behind [`try_par_map`] and [`par_map`]. `retry`
/// is off for [`par_map`], whose items are consumed by their first
/// attempt and therefore cannot be replayed.
fn supervise<I, T, F>(
    cells: Vec<Cell<I>>,
    budget: Duration,
    retry: bool,
    f: F,
) -> Vec<Result<T, CellError>>
where
    I: Send + Sync,
    T: Send,
    F: Fn(&Cell<I>) -> T + Sync,
{
    let n = cells.len();
    let workers = threads().min(n).max(1);
    if workers == 1 {
        // Inline path: identical supervision semantics minus the watchdog
        // (one thread cannot watch itself without being preempted).
        return cells.iter().map(|c| run_cell_inner(c, &f, retry)).collect();
    }

    let slots: Vec<Mutex<Slot<T>>> = (0..n).map(|_| Mutex::new(Slot::Pending)).collect();
    // Start instant of the attempt currently running per cell (None when
    // idle); the watchdog compares these against the budget.
    let running: Vec<Mutex<Option<Instant>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let done = AtomicBool::new(false);

    let cells = &cells;
    let slots = &slots;
    let running = &running;
    let cursor = &cursor;
    let done = &done;
    let f = &f;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cell = &cells[i];
                let start = Instant::now();
                trace_cell(TraceKind::CellStart, &cell.label, cell.seed, 0);
                par_metrics().cells.inc();
                *running[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(start);
                let first = attempt(cell, f);
                let outcome = match first {
                    Ok(t) => Ok(t),
                    Err(payload) if !retry => Err(CellError {
                        label: cell.label.clone(),
                        seed: cell.seed,
                        elapsed: start.elapsed(),
                        payload,
                        kind: CellFailure::Panicked,
                    }),
                    Err(_) => {
                        // Retry once with the identical input. Reset the
                        // watchdog clock: the retry gets a fresh budget.
                        *running[i].lock().unwrap_or_else(|e| e.into_inner()) =
                            Some(Instant::now());
                        // If the watchdog already quarantined this cell,
                        // don't burn time retrying a timed-out attempt.
                        let quarantined = matches!(
                            *slots[i].lock().unwrap_or_else(|e| e.into_inner()),
                            Slot::Failed(_)
                        );
                        if quarantined {
                            *running[i].lock().unwrap_or_else(|e| e.into_inner()) = None;
                            continue;
                        }
                        trace_cell(TraceKind::CellRetry, &cell.label, cell.seed, 0);
                        par_metrics().retries.inc();
                        attempt(cell, f).map_err(|payload| CellError {
                            label: cell.label.clone(),
                            seed: cell.seed,
                            elapsed: start.elapsed(),
                            payload,
                            kind: CellFailure::Panicked,
                        })
                    }
                };
                *running[i].lock().unwrap_or_else(|e| e.into_inner()) = None;
                par_metrics().cell_wall_ns.observe(start.elapsed().as_nanos() as u64);
                let mut slot = slots[i].lock().unwrap_or_else(|e| e.into_inner());
                // The watchdog may have quarantined the cell while it ran;
                // a late result is discarded so reports stay consistent.
                if matches!(*slot, Slot::Pending) {
                    *slot = match outcome {
                        Ok(t) => Slot::Done(t),
                        Err(e) => {
                            trace_cell(TraceKind::CellQuarantine, &cell.label, cell.seed, 0);
                            par_metrics().quarantined.inc();
                            Slot::Failed(e)
                        }
                    };
                }
            });
        }
        // Watchdog: flags cells whose current attempt overran the budget.
        scope.spawn(move || {
            while !done.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(10));
                for i in 0..n {
                    let started = *running[i].lock().unwrap_or_else(|e| e.into_inner());
                    let Some(started) = started else { continue };
                    let elapsed = started.elapsed();
                    if elapsed <= budget {
                        continue;
                    }
                    let mut slot = slots[i].lock().unwrap_or_else(|e| e.into_inner());
                    if matches!(*slot, Slot::Pending) {
                        trace_cell(TraceKind::CellQuarantine, &cells[i].label, cells[i].seed, 1);
                        par_metrics().quarantined.inc();
                        *slot = Slot::Failed(CellError {
                            label: cells[i].label.clone(),
                            seed: cells[i].seed,
                            elapsed,
                            payload: format!(
                                "watchdog: exceeded {:.2}s wall-clock budget",
                                budget.as_secs_f64()
                            ),
                            kind: CellFailure::TimedOut,
                        });
                    }
                }
            }
        });
        // Wait for the workers (spawned first) by observing the cursor;
        // the scope itself joins everything. Signal the watchdog to exit
        // once every slot has resolved.
        while slots.iter().any(|s| {
            matches!(
                *s.lock().unwrap_or_else(|e| e.into_inner()),
                Slot::Pending
            )
        }) {
            std::thread::sleep(Duration::from_millis(2));
        }
        done.store(true, Ordering::Relaxed);
    });

    slots
        .iter()
        .map(|s| {
            let mut slot = s.lock().unwrap_or_else(|e| e.into_inner());
            match std::mem::replace(&mut *slot, Slot::Pending) {
                Slot::Done(t) => Ok(t),
                Slot::Failed(e) => Err(e),
                Slot::Pending => unreachable!("worker exited without resolving its slot"),
            }
        })
        .collect()
}

/// Map `f` over `items` on a scoped thread pool, returning results in
/// submission order.
///
/// A thin wrapper over the supervised engine: each item runs under the
/// same `catch_unwind` + watchdog machinery as [`try_par_map`] (without
/// the retry — the item is consumed by its first attempt), every other
/// item still runs to completion, and the first quarantined error (in
/// submission order) is then propagated as a panic.
pub fn par_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let cells: Vec<Cell<Mutex<Option<I>>>> = items
        .into_iter()
        .enumerate()
        .map(|(i, item)| Cell::new(format!("par_map/{i}"), 0, Mutex::new(Some(item))))
        .collect();
    let results = supervise(cells, cell_timeout(), false, |cell| {
        let item = cell
            .input
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("par_map item consumed by a failed first attempt");
        f(item)
    });
    results
        .into_iter()
        .map(|r| match r {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_submission_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(items, |i| i * 3);
        assert_eq!(out, (0..257).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        // Serialize against tests that flip the process-global thread
        // override (`set_threads` has no scoping; see `override_guard`).
        let _g = override_guard();
        let items: Vec<u64> = (0..64).collect();
        let work = |i: u64| {
            let mut rng = crate::rng::SimRng::seed_from_u64(derive_seed(7, "test", i));
            (0..100).map(|_| rng.uniform()).sum::<f64>()
        };
        let par = par_map(items.clone(), work);
        let seq: Vec<f64> = items.into_iter().map(work).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn derive_seed_separates_labels_and_indices() {
        let a = derive_seed(1, "figure4", 0);
        let b = derive_seed(1, "figure4", 1);
        let c = derive_seed(1, "figure5", 0);
        let d = derive_seed(2, "figure4", 0);
        let all = [a, b, c, d];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j], "collision between {i} and {j}");
            }
        }
    }

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, "x", 3), derive_seed(42, "x", 3));
    }

    #[test]
    fn threads_env_is_respected_by_resolution_order() {
        let _g = override_guard();
        // The programmatic override wins over everything.
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(None);
        assert!(threads() >= 1);
    }

    fn supervised_cells(n: u64) -> Vec<Cell<u64>> {
        (0..n)
            .map(|i| Cell::new(format!("t/{i}"), derive_seed(9, "t", i), i))
            .collect()
    }

    #[test]
    fn panicking_cell_is_quarantined_while_others_complete() {
        let _g = override_guard();
        set_threads(Some(4));
        let out = try_par_map(supervised_cells(12), |c| {
            if c.input == 5 {
                panic!("deliberate failure in cell five");
            }
            c.input * 2
        });
        set_threads(None);
        assert_eq!(out.len(), 12);
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.label, "t/5");
                assert_eq!(e.seed, derive_seed(9, "t", 5));
                assert_eq!(e.kind, CellFailure::Panicked);
                assert!(e.payload.contains("deliberate failure"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), (i as u64) * 2);
            }
        }
    }

    #[test]
    fn transient_panic_is_retried_with_same_cell() {
        use std::sync::atomic::AtomicU32;
        let attempts = AtomicU32::new(0);
        let out = try_par_map(supervised_cells(1), |c| {
            if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            c.seed
        });
        assert_eq!(out.len(), 1);
        // The retry ran the identical cell: same derived seed comes back.
        assert_eq!(*out[0].as_ref().unwrap(), derive_seed(9, "t", 0));
        assert_eq!(attempts.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn watchdog_quarantines_an_overrunning_cell() {
        let _g = override_guard();
        set_threads(Some(4));
        let out = try_par_map_with(
            supervised_cells(6),
            Duration::from_millis(40),
            |c| {
                if c.input == 2 {
                    // Overrun the budget; the watchdog flags it, the late
                    // result is discarded, siblings are unaffected.
                    std::thread::sleep(Duration::from_millis(400));
                }
                c.input
            },
        );
        set_threads(None);
        let e = out[2].as_ref().unwrap_err();
        assert_eq!(e.kind, CellFailure::TimedOut);
        assert!(e.payload.contains("watchdog"));
        for (i, r) in out.iter().enumerate() {
            if i != 2 {
                assert_eq!(*r.as_ref().unwrap(), i as u64);
            }
        }
    }

    #[test]
    fn inline_path_supervises_too() {
        let _g = override_guard();
        set_threads(Some(1));
        let out = try_par_map(supervised_cells(3), |c| {
            if c.input == 1 {
                panic!("inline failure");
            }
            c.input
        });
        set_threads(None);
        assert!(out[0].is_ok() && out[2].is_ok());
        assert!(out[1].as_ref().unwrap_err().payload.contains("inline failure"));
    }

    #[test]
    fn par_map_propagates_first_quarantined_error() {
        let _g = override_guard();
        set_threads(Some(2));
        let r = std::panic::catch_unwind(|| {
            par_map(vec![0u64, 1, 2, 3], |i| {
                if i >= 2 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        set_threads(None);
        let msg = payload_string(r.unwrap_err());
        // First in submission order, regardless of scheduling.
        assert!(msg.contains("boom at 2"), "got: {msg}");
        assert!(msg.contains("par_map/2"), "got: {msg}");
    }

    #[test]
    fn run_cell_reports_label_seed_and_payload() {
        let cell = Cell::new("solo", 1234, ());
        let err = run_cell(&cell, |_| -> () { panic!("solo cell failure") }).unwrap_err();
        assert_eq!(err.label, "solo");
        assert_eq!(err.seed, 1234);
        assert!(err.payload.contains("solo cell failure"));
        assert!(err.to_string().contains("seed 1234"));
    }
}
