//! Deterministic parallel execution for the experiment harness.
//!
//! The paper's methodology is ≥5 independent repeats per cell — every cell
//! is a pure function of its config and seed, so the suite is
//! embarrassingly parallel. [`par_map`] fans independent work items across
//! `available_parallelism()` OS threads (scoped, no dependencies) and
//! returns results **in submission order**, so a parallel run is
//! bit-identical to a sequential one as long as each item derives its own
//! RNG stream via [`derive_seed`] instead of sharing a generator.
//!
//! Thread count resolution, highest priority first:
//! 1. a programmatic override set with [`set_threads`] (used by the
//!    determinism tests to compare single- and multi-threaded runs inside
//!    one process),
//! 2. the `VISIONSIM_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::rng::splitmix64;

/// Programmatic thread-count override; 0 means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force the worker count for subsequent [`par_map`] calls in this process
/// (`None` restores env/hardware resolution). Takes precedence over
/// `VISIONSIM_THREADS`.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The worker count [`par_map`] will use right now.
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("VISIONSIM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derive a collision-free child seed for one experiment cell.
///
/// XOR-offset schemes (`seed ^ ((r + 1) * 7919)`) correlate streams across
/// cells: two cells whose offsets collide share an entire stream, and even
/// distinct offsets leave most state bits identical. This instead chains
/// three SplitMix64 finalizer passes — over the root, a hash of the label,
/// and the index — so every (root, label, index) triple lands in an
/// independent region of seed space with full avalanche.
pub fn derive_seed(root: u64, label: &str, index: u64) -> u64 {
    // FNV-1a over the label, so "figure4/F*" and "figure4/Z" diverge.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut st = root;
    let a = splitmix64(&mut st);
    let mut st = a ^ h;
    let b = splitmix64(&mut st);
    let mut st = b ^ index;
    splitmix64(&mut st)
}

/// Map `f` over `items` on a scoped thread pool, returning results in
/// submission order.
///
/// Each item is claimed exactly once via an atomic cursor, computed, and
/// written into its own slot, so scheduling order never affects the output.
/// With one worker (or one item) the items are mapped inline with no
/// threads spawned. A panic in any item propagates to the caller.
pub fn par_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let workers = threads().min(n).max(1);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let queue = &queue;
    let slots = &slots;
    let cursor = &cursor;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = queue[i]
                    .lock()
                    .expect("queue slot poisoned")
                    .take()
                    .expect("item claimed twice");
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .iter()
        .map(|s| {
            s.lock()
                .expect("result slot poisoned")
                .take()
                .expect("worker exited without writing its slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_submission_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(items, |i| i * 3);
        assert_eq!(out, (0..257).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        let items: Vec<u64> = (0..64).collect();
        let work = |i: u64| {
            let mut rng = crate::rng::SimRng::seed_from_u64(derive_seed(7, "test", i));
            (0..100).map(|_| rng.uniform()).sum::<f64>()
        };
        let par = par_map(items.clone(), work);
        let seq: Vec<f64> = items.into_iter().map(work).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn derive_seed_separates_labels_and_indices() {
        let a = derive_seed(1, "figure4", 0);
        let b = derive_seed(1, "figure4", 1);
        let c = derive_seed(1, "figure5", 0);
        let d = derive_seed(2, "figure4", 0);
        let all = [a, b, c, d];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j], "collision between {i} and {j}");
            }
        }
    }

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, "x", 3), derive_seed(42, "x", 3));
    }

    #[test]
    fn threads_env_is_respected_by_resolution_order() {
        // The programmatic override wins over everything.
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(None);
        assert!(threads() >= 1);
    }
}
