//! Data sizes and data rates.
//!
//! The paper reports throughput in Mbps and payload sizes in bytes; mixing
//! the two up (or bits with bytes) is the classic measurement bug, so both
//! get newtypes. [`DataRate`] is stored in bits per second, [`ByteSize`] in
//! bytes, and conversions between them go through explicit methods that
//! involve a [`SimDuration`].

use crate::time::SimDuration;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A size in bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

/// A data rate in bits per second.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DataRate(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from a byte count.
    pub const fn from_bytes(b: u64) -> Self {
        ByteSize(b)
    }

    /// Construct from kilobytes (10^3 bytes).
    pub const fn from_kb(kb: u64) -> Self {
        ByteSize(kb * 1_000)
    }

    /// Construct from megabytes (10^6 bytes).
    pub const fn from_mb(mb: u64) -> Self {
        ByteSize(mb * 1_000_000)
    }

    /// The raw byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// The size in bits.
    pub const fn as_bits(self) -> u64 {
        self.0 * 8
    }

    /// The size in fractional kilobytes.
    pub fn as_kb_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The size in fractional megabytes.
    pub fn as_mb_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The average rate achieved by moving this many bytes in `dt`.
    /// Returns [`DataRate::ZERO`] for a zero interval.
    pub fn rate_over(self, dt: SimDuration) -> DataRate {
        if dt.is_zero() {
            return DataRate::ZERO;
        }
        DataRate::from_bps_f64(self.as_bits() as f64 / dt.as_secs_f64())
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }
}

impl DataRate {
    /// Zero bits per second.
    pub const ZERO: DataRate = DataRate(0);

    /// Construct from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        DataRate(bps)
    }

    /// Construct from kilobits per second.
    pub const fn from_kbps(kbps: u64) -> Self {
        DataRate(kbps * 1_000)
    }

    /// Construct from megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        DataRate(mbps * 1_000_000)
    }

    /// Construct from fractional megabits per second.
    pub fn from_mbps_f64(mbps: f64) -> Self {
        DataRate((mbps.max(0.0) * 1e6).round() as u64)
    }

    /// Construct from fractional bits per second.
    pub fn from_bps_f64(bps: f64) -> Self {
        DataRate(bps.max(0.0).round() as u64)
    }

    /// Raw bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Fractional kilobits per second.
    pub fn as_kbps_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional megabits per second.
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time needed to serialize `size` at this rate.
    /// Returns `None` for a zero rate (the transfer never completes).
    pub fn transmit_time(self, size: ByteSize) -> Option<SimDuration> {
        if self.0 == 0 {
            return None;
        }
        Some(SimDuration::from_secs_f64(
            size.as_bits() as f64 / self.0 as f64,
        ))
    }

    /// Bytes transferred in `dt` at this rate (floor).
    pub fn bytes_in(self, dt: SimDuration) -> ByteSize {
        ByteSize((self.0 as f64 * dt.as_secs_f64() / 8.0).floor() as u64)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0 + other.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, other: ByteSize) {
        self.0 += other.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0 - other.0)
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, k: u64) -> ByteSize {
        ByteSize(self.0 * k)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl Add for DataRate {
    type Output = DataRate;
    fn add(self, other: DataRate) -> DataRate {
        DataRate(self.0 + other.0)
    }
}

impl AddAssign for DataRate {
    fn add_assign(&mut self, other: DataRate) {
        self.0 += other.0;
    }
}

impl Sub for DataRate {
    type Output = DataRate;
    fn sub(self, other: DataRate) -> DataRate {
        DataRate(self.0 - other.0)
    }
}

impl Mul<u64> for DataRate {
    type Output = DataRate;
    fn mul(self, k: u64) -> DataRate {
        DataRate(self.0 * k)
    }
}

impl Div<u64> for DataRate {
    type Output = DataRate;
    fn div(self, k: u64) -> DataRate {
        DataRate(self.0 / k)
    }
}

impl Sum for DataRate {
    fn sum<I: Iterator<Item = DataRate>>(iter: I) -> DataRate {
        iter.fold(DataRate::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}MB", self.as_mb_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}KB", self.as_kb_f64())
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl fmt::Debug for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Mbps", self.as_mbps_f64())
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}Mbps", self.as_mbps_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}Kbps", self.as_kbps_f64())
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_conversions() {
        assert_eq!(ByteSize::from_kb(2).as_bytes(), 2_000);
        assert_eq!(ByteSize::from_mb(1).as_bits(), 8_000_000);
        assert_eq!(ByteSize::from_bytes(1_500).as_kb_f64(), 1.5);
    }

    #[test]
    fn rate_conversions() {
        assert_eq!(DataRate::from_mbps(4).as_bps(), 4_000_000);
        assert_eq!(DataRate::from_kbps(700).as_mbps_f64(), 0.7);
    }

    #[test]
    fn transmit_time_matches_hand_math() {
        // 1500 bytes at 12 Mbps = 12000 bits / 12e6 bps = 1 ms.
        let t = DataRate::from_mbps(12)
            .transmit_time(ByteSize::from_bytes(1_500))
            .unwrap();
        assert_eq!(t, SimDuration::from_millis(1));
    }

    #[test]
    fn zero_rate_never_completes() {
        assert!(DataRate::ZERO
            .transmit_time(ByteSize::from_bytes(1))
            .is_none());
    }

    #[test]
    fn rate_over_inverts_bytes_in() {
        let rate = DataRate::from_mbps(8);
        let dt = SimDuration::from_secs(2);
        let moved = rate.bytes_in(dt);
        assert_eq!(moved, ByteSize::from_mb(2));
        let back = moved.rate_over(dt);
        assert_eq!(back, rate);
    }

    #[test]
    fn rate_over_zero_interval_is_zero() {
        assert_eq!(
            ByteSize::from_mb(1).rate_over(SimDuration::ZERO),
            DataRate::ZERO
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", DataRate::from_kbps(640)), "640.00Kbps");
        assert_eq!(format!("{}", ByteSize::from_bytes(78)), "78B");
        assert_eq!(format!("{}", DataRate::from_mbps_f64(0.67)), "670.00Kbps");
        assert_eq!(format!("{}", DataRate::from_mbps_f64(4.2)), "4.20Mbps");
    }

    #[test]
    fn sums_accumulate() {
        let total: ByteSize = (1..=4).map(ByteSize::from_kb).sum();
        assert_eq!(total, ByteSize::from_kb(10));
        let r: DataRate = vec![DataRate::from_mbps(1); 3].into_iter().sum();
        assert_eq!(r, DataRate::from_mbps(3));
    }
}
