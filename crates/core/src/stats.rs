//! Summary statistics.
//!
//! The paper reports results as mean±std ("6.55±0.11 ms") and as boxplots
//! with 5th/25th/median/75th/95th percentiles plus the mean (Figures 4–6).
//! This module provides exactly those summaries:
//!
//! * [`StreamingStats`] — O(1)-memory mean / variance / min / max (Welford).
//! * [`Percentiles`] — exact percentiles over a retained sample set, using
//!   linear interpolation between order statistics (the same convention as
//!   numpy's default, so figures line up with the usual tooling).
//! * [`BoxplotSummary`] — the five-number-plus-mean summary the figures draw.

use crate::sanitizer;
use std::fmt;

/// Streaming mean/variance via Welford's algorithm, plus min/max.
#[derive(Clone, Debug, Default)]
pub struct StreamingStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation. A NaN/Inf observation is accepted (it poisons
    /// the accumulator exactly as it always did — the sanitizer is
    /// observe-only) but recorded as a violation when the
    /// [`crate::sanitizer`] is enabled.
    pub fn push(&mut self, x: f64) {
        sanitizer::check_finite("stats/streaming-nonfinite", x);
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for StreamingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}±{:.3} (n={})", self.mean(), self.std_dev(), self.n)
    }
}

/// Exact percentile computation over a retained sample set.
#[derive(Clone, Debug, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// An empty sample set.
    pub fn new() -> Self {
        Percentiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Build from an existing vector of samples.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        Percentiles {
            samples,
            sorted: false,
        }
    }

    /// Add one observation. Non-finite values are rejected (they would
    /// poison the sort order silently): with the [`crate::sanitizer`]
    /// enabled the rejection is a violation report and the sample is
    /// dropped; without it, a panic (the historical behaviour — a sweep
    /// with no supervision has nothing to collect a report).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            if sanitizer::enabled() {
                sanitizer::report(
                    "stats/percentile-nonfinite",
                    format!("rejected non-finite sample {x}"),
                );
                return;
            }
            panic!("non-finite sample {x}");
        }
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of retained samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // total_cmp so a NaN smuggled in via `from_samples` cannot
            // panic the sort (it sorts last and is caught upstream by the
            // sanitizer's finite guards).
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
    }

    /// The `p`-th percentile with linear interpolation. `p` outside
    /// `[0, 100]` (including NaN) is clamped into range — reported as a
    /// sanitizer violation, never a panic: percentile requests reach this
    /// code from experiment configs, and a bad config must not take down
    /// a supervised cell. Returns NaN on an empty set.
    pub fn percentile(&mut self, p: f64) -> f64 {
        let p = if (0.0..=100.0).contains(&p) {
            p
        } else {
            if sanitizer::enabled() {
                sanitizer::report(
                    "stats/percentile-range",
                    format!("percentile {p} clamped into [0, 100]"),
                );
            }
            // NaN comparisons are all false, so a NaN `p` lands here;
            // clamp maps it to 0 rather than propagating into the rank.
            if p > 100.0 {
                100.0
            } else {
                0.0
            }
        };
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        if n == 1 {
            return self.samples[0];
        }
        let rank = p / 100.0 * (n - 1) as f64;
        // Both indices are clamped defensively: rank arithmetic at
        // p = 100 lands exactly on n-1 in every IEEE rounding mode we
        // know of, but an out-of-bounds read here would be silent UB-by-
        // panic in the middle of a figure sweep, so make it impossible.
        let lo = (rank.floor() as usize).min(n - 1);
        let hi = (rank.ceil() as usize).min(n - 1);
        let frac = rank - lo as f64;
        self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Arithmetic mean (NaN on empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample standard deviation (0 with fewer than two samples).
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let ss: f64 = self.samples.iter().map(|x| (x - mean).powi(2)).sum();
        (ss / (n - 1) as f64).sqrt()
    }

    /// The boxplot summary used throughout the paper's figures.
    pub fn boxplot(&mut self) -> BoxplotSummary {
        BoxplotSummary {
            p5: self.percentile(5.0),
            p25: self.percentile(25.0),
            median: self.percentile(50.0),
            p75: self.percentile(75.0),
            p95: self.percentile(95.0),
            mean: self.mean(),
            count: self.count(),
        }
    }

    /// Immutable view of the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// The five-number-plus-mean summary drawn as one box in Figures 4–6.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoxplotSummary {
    /// 5th percentile (lower whisker).
    pub p5: f64,
    /// 25th percentile (box bottom).
    pub p25: f64,
    /// Median (the figures' red bar).
    pub median: f64,
    /// 75th percentile (box top).
    pub p75: f64,
    /// 95th percentile (upper whisker).
    pub p95: f64,
    /// Mean (the figures' blue dot).
    pub mean: f64,
    /// Number of samples behind the summary.
    pub count: usize,
}

impl fmt::Display for BoxplotSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p5={:.3} p25={:.3} med={:.3} p75={:.3} p95={:.3} mean={:.3} (n={})",
            self.p5, self.p25, self.median, self.p75, self.p95, self.mean, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_of_empty_set_is_nan_not_panic() {
        let mut p = Percentiles::new();
        assert!(p.percentile(0.0).is_nan());
        assert!(p.percentile(50.0).is_nan());
        assert!(p.percentile(100.0).is_nan());
        assert!(p.median().is_nan());
    }

    #[test]
    fn percentile_of_single_sample_is_that_sample() {
        let mut p = Percentiles::new();
        p.push(42.5);
        assert_eq!(p.percentile(0.0), 42.5);
        assert_eq!(p.percentile(50.0), 42.5);
        assert_eq!(p.percentile(100.0), 42.5);
    }

    #[test]
    fn percentile_endpoints_hit_min_and_max() {
        let mut p = Percentiles::new();
        for x in [3.0, 1.0, 4.0, 1.5, 9.0, 2.6] {
            p.push(x);
        }
        assert_eq!(p.percentile(0.0), 1.0);
        assert_eq!(p.percentile(100.0), 9.0);
        // Near-100 values must interpolate inside the range, never index
        // past the last retained sample.
        let near = p.percentile(99.999999999);
        assert!((1.0..=9.0).contains(&near));
    }

    #[test]
    fn out_of_range_percentile_clamps_instead_of_panicking() {
        let mut p = Percentiles::new();
        for x in [1.0, 2.0, 3.0] {
            p.push(x);
        }
        assert_eq!(p.percentile(-5.0), 1.0);
        assert_eq!(p.percentile(150.0), 3.0);
        assert_eq!(p.percentile(f64::NAN), 1.0);
    }

    #[test]
    fn streaming_matches_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = StreamingStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12); // population variance
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn streaming_merge_equals_sequential() {
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        let mut all = StreamingStats::new();
        for i in 0..50 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
            all.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.std_dev() - all.std_dev()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = StreamingStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn percentile_interpolation() {
        let mut p = Percentiles::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.percentile(0.0), 1.0);
        assert_eq!(p.percentile(100.0), 4.0);
        assert_eq!(p.median(), 2.5);
        assert!((p.percentile(25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_sample() {
        let mut p = Percentiles::from_samples(vec![7.0]);
        assert_eq!(p.percentile(5.0), 7.0);
        assert_eq!(p.percentile(95.0), 7.0);
    }

    #[test]
    fn percentile_empty_is_nan() {
        let mut p = Percentiles::new();
        assert!(p.percentile(50.0).is_nan());
        assert!(p.mean().is_nan());
    }

    #[test]
    fn nonfinite_samples_are_reported_and_dropped_under_sanitizer() {
        let _g = crate::par::override_guard();
        crate::sanitizer::force(Some(true));
        crate::sanitizer::reset();
        let mut p = Percentiles::new();
        p.push(f64::NAN);
        p.push(1.0);
        assert_eq!(p.count(), 1, "NaN must be rejected, not retained");
        assert!(crate::sanitizer::take()
            .iter()
            .any(|v| v.site == "stats/percentile-nonfinite"));
        crate::sanitizer::force(None);
        crate::sanitizer::reset();
    }

    #[test]
    fn rejects_nan_samples_by_panic_without_sanitizer() {
        let _g = crate::par::override_guard();
        crate::sanitizer::force(Some(false));
        let r = std::panic::catch_unwind(|| Percentiles::new().push(f64::NAN));
        crate::sanitizer::force(None);
        assert!(r.is_err(), "unsanitized push must keep its panic contract");
    }

    #[test]
    fn boxplot_is_monotone() {
        let mut p = Percentiles::new();
        for i in 0..1_000 {
            p.push((i as f64 * 0.7).sin() * 50.0 + 100.0);
        }
        let b = p.boxplot();
        assert!(b.p5 <= b.p25);
        assert!(b.p25 <= b.median);
        assert!(b.median <= b.p75);
        assert!(b.p75 <= b.p95);
        assert_eq!(b.count, 1_000);
    }

    #[test]
    fn std_dev_matches_known_value() {
        let p = Percentiles::from_samples(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        // Sample std-dev of this classic set is sqrt(32/7).
        assert!((p.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }
}
