//! Discrete-event scheduling.
//!
//! [`EventQueue`] is a min-heap keyed by [`SimTime`] with a monotone sequence
//! number as tie-breaker, so events scheduled for the same instant pop in
//! FIFO order. Determinism of the tie-break matters: two packets arriving at
//! a queue "simultaneously" must drain in a reproducible order for runs to
//! replay bit-exactly.
//!
//! When the [`crate::sanitizer`] is enabled the queue also monitors two
//! invariants observe-only: popped timestamps never regress (virtual-time
//! monotonicity) and occupancy stays under [`OCCUPANCY_BOUND`] (a runaway
//! self-rescheduling loop shows up here long before it OOMs).

use crate::sanitizer;
use crate::time::SimTime;
use std::cmp::Ordering;

/// Occupancy ceiling the sanitizer checks against: no workload in the
/// workspace legitimately keeps this many events pending at once.
pub const OCCUPANCY_BOUND: usize = 1 << 22;

/// An event of payload type `E` scheduled at a virtual instant.
#[derive(Clone, Debug)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Insertion order; breaks ties among same-instant events.
    pub seq: u64,
    /// The payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> ScheduledEvent<E> {
    /// `(at, seq)` packed into one integer so heap sifts compare once,
    /// branchlessly — the two-level `cmp().then_with()` chain mispredicts
    /// heavily when many events share a timestamp, which is exactly the
    /// steady-state shape of batched packet traffic.
    #[inline]
    fn key(&self) -> u128 {
        pack_key(self.at, self.seq)
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so a max-heap would yield the earliest event first; also
        // the order `pops_in_time_order`-style consumers observe.
        other.key().cmp(&self.key())
    }
}

/// `(at, seq)` packed so one unsigned compare orders events exactly like
/// the lexicographic `(at, seq)` pair: timestamp in the high 64 bits,
/// insertion sequence in the low 64.
#[inline]
const fn pack_key(at: SimTime, seq: u64) -> u128 {
    ((at.as_nanos() as u128) << 64) | seq as u128
}

/// A reusable structure-of-arrays buffer that [`EventQueue::drain_due_into`]
/// fills with one *tick* of events: every pending event sharing the
/// earliest due timestamp, in `(at, seq)` order. Timestamps, sequence
/// numbers, and payloads live in parallel dense arrays so a batch consumer
/// iterates three flat vectors instead of chasing per-event structures.
///
/// The buffer is meant to be allocated once and reused across ticks:
/// `drain_due_into` clears it (keeping capacity), so after the first few
/// ticks reach the steady-state batch width, draining allocates nothing.
#[derive(Debug)]
pub struct ScratchBatch<E> {
    ats: Vec<SimTime>,
    seqs: Vec<u64>,
    payloads: Vec<E>,
}

// Manual impl: an empty buffer needs no `E: Default`.
impl<E> Default for ScratchBatch<E> {
    fn default() -> Self {
        ScratchBatch::new()
    }
}

impl<E> ScratchBatch<E> {
    /// An empty scratch buffer.
    pub fn new() -> Self {
        ScratchBatch {
            ats: Vec::new(),
            seqs: Vec::new(),
            payloads: Vec::new(),
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Drop buffered events, keeping allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.ats.clear();
        self.seqs.clear();
        self.payloads.clear();
    }

    /// Timestamp of event `i` (drained events share one tick timestamp,
    /// but the array is kept per-event so consumers need no side lookup).
    #[inline]
    pub fn at(&self, i: usize) -> SimTime {
        self.ats[i]
    }

    /// Insertion sequence number of event `i`.
    #[inline]
    pub fn seq(&self, i: usize) -> u64 {
        self.seqs[i]
    }

    /// Payload of event `i`.
    #[inline]
    pub fn payload(&self, i: usize) -> &E {
        &self.payloads[i]
    }

    /// Iterate `(at, seq, payload)` in drain order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, u64, &E)> {
        self.ats
            .iter()
            .zip(&self.seqs)
            .zip(&self.payloads)
            .map(|((&at, &seq), p)| (at, seq, p))
    }
}

/// A deterministic discrete-event queue.
///
/// Internally a 4-ary min-heap in structure-of-arrays layout: sift
/// operations compare packed `u128` keys in a dense array (four per cache
/// line) and only move the fixed-size payloads alongside. Keys are unique
/// (the sequence number is a tie-breaker), so the pop order is the total
/// `(at, seq)` order regardless of heap shape — arity is purely a
/// constant-factor choice, not a semantic one.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Packed `(at, seq)` ordering keys, heap-ordered.
    keys: Vec<u128>,
    /// Payloads, parallel to `keys`.
    payloads: Vec<E>,
    next_seq: u64,
    now: SimTime,
    /// One-shot flag so an occupancy breach reports once per queue, not
    /// once per event of a multi-million-event storm.
    occupancy_reported: bool,
}

/// Children per heap node. Four keeps the tree half as deep as a binary
/// heap and the sibling scan inside one cache line.
const HEAP_ARITY: usize = 4;

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            keys: Vec::new(),
            payloads: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            occupancy_reported: false,
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / HEAP_ARITY;
            if self.keys[parent] <= self.keys[i] {
                break;
            }
            self.keys.swap(i, parent);
            self.payloads.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.keys.len();
        loop {
            let first = i * HEAP_ARITY + 1;
            if first >= n {
                break;
            }
            let mut min = first;
            let end = (first + HEAP_ARITY).min(n);
            for c in first + 1..end {
                if self.keys[c] < self.keys[min] {
                    min = c;
                }
            }
            if self.keys[i] <= self.keys[min] {
                break;
            }
            self.keys.swap(i, min);
            self.payloads.swap(i, min);
            i = min;
        }
    }

    /// The current virtual time: the timestamp of the last popped event, or
    /// zero before anything has run.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is in the past (before the last popped event); the simulator
    /// has no mechanism for retro-causality, so this is always a bug.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {:?} < {:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.keys.push(pack_key(at, seq));
        self.payloads.push(payload);
        self.sift_up(self.keys.len() - 1);
        if !self.occupancy_reported && self.keys.len() > OCCUPANCY_BOUND {
            self.occupancy_reported = true;
            sanitizer::report(
                "event/occupancy",
                format!(
                    "queue holds {} pending events (bound {OCCUPANCY_BOUND}) at {:?}",
                    self.keys.len(),
                    self.now
                ),
            );
        }
    }

    /// Schedule `payload` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, payload: E) {
        let at = self.now + delay;
        self.schedule(at, payload);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.keys.is_empty() {
            return None;
        }
        let last = self.keys.len() - 1;
        self.keys.swap(0, last);
        self.payloads.swap(0, last);
        let key = self.keys.pop().expect("checked non-empty");
        let payload = self.payloads.pop().expect("keys and payloads in sync");
        if last > 0 {
            self.sift_down(0);
        }
        let at = SimTime::from_nanos((key >> 64) as u64);
        let seq = key as u64;
        sanitizer::check(at >= self.now, "event/monotonic", || {
            format!("popped event at {at:?} behind the clock at {:?}", self.now)
        });
        self.now = at;
        Some(ScheduledEvent { at, seq, payload })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.keys
            .first()
            .map(|&k| SimTime::from_nanos((k >> 64) as u64))
    }

    /// Pop the earliest event only if it fires at or before `until` —
    /// the fused peek-and-pop the hot event loop drains with.
    pub fn pop_if_due(&mut self, until: SimTime) -> Option<ScheduledEvent<E>> {
        // One u128 compare against the horizon's upper bound: any key with
        // timestamp ≤ until sorts below ((until + 1ns) << 64).
        let bound = (until.as_nanos() as u128 + 1) << 64;
        if *self.keys.first()? >= bound {
            return None;
        }
        self.pop()
    }

    /// Drain one *tick* into `batch`: every pending event whose timestamp
    /// equals the earliest due timestamp (≤ `until`), in `(at, seq)` order.
    /// Returns the number of events drained (0 when nothing is due).
    ///
    /// This is the batched sibling of [`EventQueue::pop_if_due`]: a loop of
    /// `drain_due_into` observes exactly the pop order of a loop of
    /// `pop_if_due`, because an event scheduled *while the drained tick is
    /// being processed* carries a later sequence number than everything
    /// drained — it lands in a later tick, precisely where the scalar loop
    /// would have popped it. That equal-timestamp cut is what makes batch
    /// processing safe for RNG draw-order determinism: no handler-scheduled
    /// event can ever need to interleave *between* two drained events.
    ///
    /// `batch` is cleared first (capacity retained), so a reused scratch
    /// buffer makes steady-state draining allocation-free.
    pub fn drain_due_into(&mut self, until: SimTime, batch: &mut ScratchBatch<E>) -> usize {
        batch.clear();
        let Some(first) = self.peek_time() else {
            return 0;
        };
        if first > until {
            return 0;
        }
        // One tick = all events at `first`. Keys with the same timestamp
        // sort below ((first + 1ns) << 64) and pop in seq order.
        let bound = (first.as_nanos() as u128 + 1) << 64;
        while let Some(&key) = self.keys.first() {
            if key >= bound {
                break;
            }
            let ev = self.pop().expect("peeked non-empty");
            batch.ats.push(ev.at);
            batch.seqs.push(ev.seq);
            batch.payloads.push(ev.payload);
        }
        batch.len()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Advance the clock to `until` without processing anything — the idle
    /// fast path for callers that drain events themselves and only need the
    /// virtual time moved (no closure, no per-event dispatch).
    ///
    /// # Panics
    /// If an event earlier than `until` is still pending: skipping it would
    /// silently reorder the simulation.
    pub fn advance_to(&mut self, until: SimTime) {
        if let Some(at) = self.peek_time() {
            assert!(
                at > until,
                "advance_to({until:?}) would skip a pending event at {at:?}"
            );
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// Drain and process events until the queue is empty or `until` is
    /// reached (events scheduled exactly at `until` are processed). The
    /// handler may schedule further events through the queue it is given.
    pub fn run_until<F>(&mut self, until: SimTime, mut handler: F)
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        while let Some(ev) = self.pop_if_due(until) {
            handler(self, ev.at, ev.payload);
        }
        if self.now < until {
            self.now = until;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn run_until_respects_horizon_and_allows_rescheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 0u32);
        let mut fired = Vec::new();
        q.run_until(SimTime::from_millis(5), |q, t, n| {
            fired.push(n);
            if n < 100 {
                // Re-arm 1 ms later, counting fires.
                q.schedule(t + SimDuration::from_millis(1), n + 1);
            }
        });
        // Fires at 1,2,3,4,5 ms inclusive.
        assert_eq!(fired, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.now(), SimTime::from_millis(5));
        assert_eq!(q.len(), 1); // the 6 ms event is still pending
    }

    #[test]
    fn advance_to_moves_the_clock_without_dispatch() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.advance_to(SimTime::from_millis(250));
        assert_eq!(q.now(), SimTime::from_millis(250));
        // Never moves backwards.
        q.advance_to(SimTime::from_millis(100));
        assert_eq!(q.now(), SimTime::from_millis(250));
        // Pending events beyond the horizon are untouched.
        q.schedule(SimTime::from_millis(900), 1);
        q.advance_to(SimTime::from_millis(500));
        assert_eq!(q.now(), SimTime::from_millis(500));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "would skip a pending event")]
    fn advance_to_refuses_to_skip_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.advance_to(SimTime::from_millis(20));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.run_until(SimTime::from_secs(1), |_, _, _| {});
        assert_eq!(q.now(), SimTime::from_secs(1));
    }

    #[test]
    fn drain_due_into_takes_one_timestamp_cohort_in_seq_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule(SimTime::from_millis(9), 99u32);
        for i in 0..8 {
            q.schedule(t, i);
        }
        let mut batch = ScratchBatch::new();
        let n = q.drain_due_into(SimTime::from_millis(20), &mut batch);
        assert_eq!(n, 8);
        let got: Vec<u32> = batch.iter().map(|(_, _, &p)| p).collect();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert!(batch.iter().all(|(at, _, _)| at == t));
        assert_eq!(q.now(), t);
        // The 9 ms event is the next tick.
        assert_eq!(q.drain_due_into(SimTime::from_millis(20), &mut batch), 1);
        assert_eq!(*batch.payload(0), 99);
        // Nothing further due: batch comes back empty.
        assert_eq!(q.drain_due_into(SimTime::from_millis(20), &mut batch), 0);
        assert!(batch.is_empty());
    }

    #[test]
    fn drain_due_into_respects_the_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(50), ());
        let mut batch = ScratchBatch::new();
        assert_eq!(q.drain_due_into(SimTime::from_millis(49), &mut batch), 0);
        assert_eq!(q.drain_due_into(SimTime::from_millis(50), &mut batch), 1);
    }

    #[test]
    fn drain_loop_matches_scalar_pop_order_with_rescheduling() {
        // A handler that re-schedules at the same instant: the batched loop
        // must process the re-scheduled event in a later tick, exactly where
        // the scalar loop pops it (after everything already pending).
        let build = || {
            let mut q = EventQueue::new();
            let t = SimTime::from_millis(1);
            for i in 0..4u32 {
                q.schedule(t, i);
            }
            q
        };
        let horizon = SimTime::from_millis(1);
        // Scalar reference.
        let mut scalar = Vec::new();
        let mut q = build();
        while let Some(ev) = q.pop_if_due(horizon) {
            scalar.push(ev.payload);
            if ev.payload < 2 {
                q.schedule(ev.at, ev.payload + 10);
            }
        }
        // Batched run of the same workload.
        let mut batched = Vec::new();
        let mut q = build();
        let mut batch = ScratchBatch::new();
        while q.drain_due_into(horizon, &mut batch) > 0 {
            let mut to_schedule = Vec::new();
            for (at, _, &p) in batch.iter() {
                batched.push(p);
                if p < 2 {
                    to_schedule.push((at, p + 10));
                }
            }
            for (at, p) in to_schedule {
                q.schedule(at, p);
            }
        }
        assert_eq!(scalar, batched);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "first");
        q.pop();
        q.schedule_in(SimDuration::from_millis(5), "second");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(15)));
    }
}
