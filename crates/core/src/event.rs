//! Discrete-event scheduling.
//!
//! [`EventQueue`] is a min-heap keyed by [`SimTime`] with a monotone sequence
//! number as tie-breaker, so events scheduled for the same instant pop in
//! FIFO order. Determinism of the tie-break matters: two packets arriving at
//! a queue "simultaneously" must drain in a reproducible order for runs to
//! replay bit-exactly.
//!
//! When the [`crate::sanitizer`] is enabled the queue also monitors two
//! invariants observe-only: popped timestamps never regress (virtual-time
//! monotonicity) and occupancy stays under [`OCCUPANCY_BOUND`] (a runaway
//! self-rescheduling loop shows up here long before it OOMs).

use crate::sanitizer;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Occupancy ceiling the sanitizer checks against: no workload in the
/// workspace legitimately keeps this many events pending at once.
pub const OCCUPANCY_BOUND: usize = 1 << 22;

/// An event of payload type `E` scheduled at a virtual instant.
#[derive(Clone, Debug)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Insertion order; breaks ties among same-instant events.
    pub seq: u64,
    /// The payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) yields the earliest event first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
    /// One-shot flag so an occupancy breach reports once per queue, not
    /// once per event of a multi-million-event storm.
    occupancy_reported: bool,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            occupancy_reported: false,
        }
    }

    /// The current virtual time: the timestamp of the last popped event, or
    /// zero before anything has run.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is in the past (before the last popped event); the simulator
    /// has no mechanism for retro-causality, so this is always a bug.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {:?} < {:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
        if !self.occupancy_reported && self.heap.len() > OCCUPANCY_BOUND {
            self.occupancy_reported = true;
            sanitizer::report(
                "event/occupancy",
                format!(
                    "queue holds {} pending events (bound {OCCUPANCY_BOUND}) at {:?}",
                    self.heap.len(),
                    self.now
                ),
            );
        }
    }

    /// Schedule `payload` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, payload: E) {
        let at = self.now + delay;
        self.schedule(at, payload);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        sanitizer::check(ev.at >= self.now, "event/monotonic", || {
            format!(
                "popped event at {:?} behind the clock at {:?}",
                ev.at, self.now
            )
        });
        self.now = ev.at;
        Some(ev)
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain and process events until the queue is empty or `until` is
    /// reached (events scheduled exactly at `until` are processed). The
    /// handler may schedule further events through the queue it is given.
    pub fn run_until<F>(&mut self, until: SimTime, mut handler: F)
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        while let Some(&ScheduledEvent { at, .. }) = self.heap.peek() {
            if at > until {
                break;
            }
            let ev = self.pop().expect("peeked event vanished");
            handler(self, ev.at, ev.payload);
        }
        if self.now < until {
            self.now = until;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn run_until_respects_horizon_and_allows_rescheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 0u32);
        let mut fired = Vec::new();
        q.run_until(SimTime::from_millis(5), |q, t, n| {
            fired.push(n);
            if n < 100 {
                // Re-arm 1 ms later, counting fires.
                q.schedule(t + SimDuration::from_millis(1), n + 1);
            }
        });
        // Fires at 1,2,3,4,5 ms inclusive.
        assert_eq!(fired, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.now(), SimTime::from_millis(5));
        assert_eq!(q.len(), 1); // the 6 ms event is still pending
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.run_until(SimTime::from_secs(1), |_, _, _| {});
        assert_eq!(q.now(), SimTime::from_secs(1));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "first");
        q.pop();
        q.schedule_in(SimDuration::from_millis(5), "second");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(15)));
    }
}
