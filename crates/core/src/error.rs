//! The shared error taxonomy.
//!
//! Every decoder and parser in the workspace that consumes
//! possibly-hostile bytes (entropy coders, the mesh codec, capture
//! parsers) classifies failures into the same small set of categories, so
//! a malformed or truncated input surfaces as a typed `Err` end-to-end
//! instead of a `panic!`/`expect` somewhere in the middle of a sweep.
//!
//! The taxonomy is deliberately coarse: callers rarely branch on *why* an
//! input was bad, they branch on *whether* it was — but the category plus
//! the `what` site string make a quarantined cell's report actionable.

use std::fmt;

/// Why an operation on untrusted or inconsistent data failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The input ended before the structure it claimed to contain.
    Truncated {
        /// What was being parsed (e.g. `"rans body"`).
        what: &'static str,
    },
    /// The input is self-inconsistent or fails a structural checksum.
    Corrupt {
        /// What was being parsed.
        what: &'static str,
    },
    /// The input parsed, but the decoded structure violates an invariant
    /// (index out of range, value outside its lattice, ...).
    Inconsistent {
        /// Which invariant failed.
        what: &'static str,
    },
    /// A claimed size exceeds the hard ceiling a decoder enforces to stay
    /// memory-safe under hostile headers.
    LimitExceeded {
        /// What was being sized.
        what: &'static str,
        /// The ceiling that was exceeded.
        limit: u64,
    },
    /// A configuration value is outside its supported range.
    InvalidConfig {
        /// Which parameter.
        what: &'static str,
    },
    /// A filesystem operation failed (missing directory, permission,
    /// short write). The `what` names the artifact or path role, not the
    /// OS error — supervisor reports need the site, not the errno.
    Io {
        /// What was being read or written (e.g. `"bench json dir"`).
        what: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Truncated { what } => write!(f, "truncated {what}"),
            SimError::Corrupt { what } => write!(f, "corrupt {what}"),
            SimError::Inconsistent { what } => write!(f, "inconsistent {what}"),
            SimError::LimitExceeded { what, limit } => {
                write!(f, "{what} exceeds limit of {limit}")
            }
            SimError::InvalidConfig { what } => write!(f, "invalid config: {what}"),
            SimError::Io { what } => write!(f, "io failure: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_site() {
        let e = SimError::Truncated { what: "rans body" };
        assert_eq!(e.to_string(), "truncated rans body");
        let e = SimError::LimitExceeded {
            what: "claimed length",
            limit: 42,
        };
        assert_eq!(e.to_string(), "claimed length exceeds limit of 42");
        let e = SimError::Io {
            what: "bench json dir",
        };
        assert_eq!(e.to_string(), "io failure: bench json dir");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            SimError::Corrupt { what: "x" },
            SimError::Corrupt { what: "x" }
        );
        assert_ne!(
            SimError::Corrupt { what: "x" },
            SimError::Inconsistent { what: "x" }
        );
    }
}
