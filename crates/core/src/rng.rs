//! Deterministic random-number generation for the simulator.
//!
//! [`SimRng`] is a self-contained xoshiro256++ generator seeded through a
//! SplitMix64 expansion, with the distribution samplers the workspace needs
//! (normal, lognormal, exponential, Pareto, jittered values) implemented
//! in-tree. Keeping the whole generator in-tree makes the sampling
//! algorithms part of the reviewed reproduction code and leaves the
//! workspace with zero external dependencies.
//!
//! Every stochastic component takes a `&mut SimRng` explicitly; nothing in
//! the workspace reads ambient entropy, so a run is a pure function of its
//! seeds.

/// One step of the SplitMix64 sequence (Steele, Lea & Flood 2014). Used to
/// expand 64-bit seeds into full generator state and to derive
/// collision-free child seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable random source (xoshiro256++).
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed. The seed is expanded through
    /// SplitMix64 so that similar seeds (0, 1, 2, ...) still yield
    /// decorrelated state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        let s = [
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
        ];
        SimRng { s }
    }

    /// Derive an independent child generator. Useful for giving each
    /// subsystem its own stream so that adding draws in one subsystem does
    /// not perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// Next raw 64-bit output (xoshiro256++ core step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of the 64-bit step).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `out` with consecutive raw outputs — the chunked generation the
    /// batched netem kernels draw loss decisions from. Equivalent to
    /// `out.len()` calls of [`SimRng::next_u64`]: same outputs, same final
    /// state, so a batch path that consumes exactly one draw per packet
    /// leaves the stream at the identical position the scalar path would.
    /// The hoisted loop exists so the generator state stays in registers
    /// across the chunk instead of round-tripping through the sampler's
    /// branch structure per packet.
    #[inline]
    pub fn next_u64_chunk(&mut self, out: &mut [u64]) {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        for slot in out.iter_mut() {
            *slot = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
        }
        self.s = [s0, s1, s2, s3];
    }

    /// A fingerprint of the generator state: equal iff the two generators
    /// will produce identical future streams. Used by the scalar-vs-batch
    /// equivalence suite to pin exact RNG stream position.
    pub fn state_fingerprint(&self) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for &w in &self.s {
            acc = (acc ^ w).wrapping_mul(0x100_0000_01b3);
        }
        acc
    }

    /// Fill a byte slice with generator output.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform in `[0, 1)` with full 53-bit mantissa resolution.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Panics if `lo > hi`; returns `lo` when equal.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_range: lo {lo} > hi {hi}");
        if lo == hi {
            return lo;
        }
        loop {
            // Rounding can land exactly on `hi` for extreme spans; resample
            // to honour the half-open contract.
            let v = lo + self.uniform() * (hi - lo);
            if v < hi {
                return v;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive, unbiased (Lemire's
    /// multiply-shift rejection).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64: lo {lo} > hi {hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let range = span + 1;
        let threshold = range.wrapping_neg() % range;
        loop {
            let m = (self.next_u64() as u128) * (range as u128);
            if (m as u64) >= threshold {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        self.uniform_u64(0, n as u64 - 1) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Standard normal via the Marsaglia polar method.
    pub fn std_normal(&mut self) -> f64 {
        loop {
            let u = self.uniform_range(-1.0, 1.0);
            let v = self.uniform_range(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal with the given mean and (non-negative) standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "normal: negative std_dev {std_dev}");
        mean + std_dev * self.std_normal()
    }

    /// Normal truncated below at `floor` (resampled via clamping — adequate
    /// for the mild truncations used by the cost models).
    pub fn normal_clamped_min(&mut self, mean: f64, std_dev: f64, floor: f64) -> f64 {
        self.normal(mean, std_dev).max(floor)
    }

    /// Lognormal parameterized by the *underlying* normal's mu/sigma.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential with the given mean (> 0).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential: non-positive mean {mean}");
        let u: f64 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Pareto with scale `x_min` (> 0) and shape `alpha` (> 0); heavy-tailed
    /// samples used for burst modelling.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0, "pareto: bad params");
        let u: f64 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        x_min / u.powf(1.0 / alpha)
    }

    /// A value multiplicatively jittered by ±`frac` (uniform). `frac` of
    /// 0.1 yields a value in `[0.9v, 1.1v)`.
    pub fn jitter(&mut self, value: f64, frac: f64) -> f64 {
        value * (1.0 + self.uniform_range(-frac, frac))
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_streams_are_independent_of_parent_draw_count() {
        let mut a = SimRng::seed_from_u64(9);
        let child_seed_stream: Vec<u64> = {
            let mut c = a.fork();
            (0..5).map(|_| c.next_u64()).collect()
        };
        // Forking again gives a *different* child.
        let mut c2 = a.fork();
        let other: Vec<u64> = (0..5).map(|_| c2.next_u64()).collect();
        assert_ne!(child_seed_stream, other);
    }

    #[test]
    fn chunked_generation_matches_scalar_stream_and_state() {
        let mut scalar = SimRng::seed_from_u64(77);
        let mut chunked = SimRng::seed_from_u64(77);
        let want: Vec<u64> = (0..37).map(|_| scalar.next_u64()).collect();
        let mut got = vec![0u64; 37];
        chunked.next_u64_chunk(&mut got[..16]);
        chunked.next_u64_chunk(&mut got[16..33]);
        chunked.next_u64_chunk(&mut got[33..]);
        assert_eq!(want, got);
        assert_eq!(scalar.state_fingerprint(), chunked.state_fingerprint());
        // And the streams stay locked afterwards.
        assert_eq!(scalar.next_u64(), chunked.next_u64());
    }

    #[test]
    fn state_fingerprint_distinguishes_positions() {
        let mut a = SimRng::seed_from_u64(5);
        let b = a.clone();
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        a.next_u64();
        assert_ne!(a.state_fingerprint(), b.state_fingerprint());
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(50);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn uniform_u64_is_unbiased_over_small_range() {
        let mut r = SimRng::seed_from_u64(51);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.uniform_u64(0, 6) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "count {c}");
        }
    }

    #[test]
    fn uniform_u64_full_range_does_not_hang() {
        let mut r = SimRng::seed_from_u64(52);
        let _ = r.uniform_u64(0, u64::MAX);
        let _ = r.uniform_u64(5, 5);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::seed_from_u64(53);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = SimRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_mean_is_sane() {
        let mut r = SimRng::seed_from_u64(43);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::seed_from_u64(44);
        for _ in 0..1_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(45);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SimRng::seed_from_u64(46);
        for _ in 0..1_000 {
            let v = r.jitter(10.0, 0.2);
            assert!((8.0..12.0).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(47);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_range_degenerate() {
        let mut r = SimRng::seed_from_u64(48);
        assert_eq!(r.uniform_range(3.0, 3.0), 3.0);
    }

    #[test]
    fn normal_clamped_min_floors() {
        let mut r = SimRng::seed_from_u64(49);
        for _ in 0..1_000 {
            assert!(r.normal_clamped_min(0.0, 5.0, 0.0) >= 0.0);
        }
    }
}
