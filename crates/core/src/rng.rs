//! Deterministic random-number generation for the simulator.
//!
//! [`SimRng`] wraps a seeded [`rand::rngs::StdRng`] and adds the distribution
//! samplers the workspace needs (normal, lognormal, exponential, Pareto,
//! jittered values). Implementing the samplers in-tree keeps the dependency
//! surface to `rand` itself and makes the sampling algorithms part of the
//! reviewed reproduction code.
//!
//! Every stochastic component takes a `&mut SimRng` explicitly; nothing in
//! the workspace reads ambient entropy, so a run is a pure function of its
//! seeds.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic, seedable random source.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator. Useful for giving each
    /// subsystem its own stream so that adding draws in one subsystem does
    /// not perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.gen())
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`. Panics if `lo > hi`; returns `lo` when equal.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_range: lo {lo} > hi {hi}");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64: lo {lo} > hi {hi}");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Standard normal via the Marsaglia polar method.
    pub fn std_normal(&mut self) -> f64 {
        loop {
            let u = self.uniform_range(-1.0, 1.0);
            let v = self.uniform_range(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal with the given mean and (non-negative) standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "normal: negative std_dev {std_dev}");
        mean + std_dev * self.std_normal()
    }

    /// Normal truncated below at `floor` (resampled via clamping — adequate
    /// for the mild truncations used by the cost models).
    pub fn normal_clamped_min(&mut self, mean: f64, std_dev: f64, floor: f64) -> f64 {
        self.normal(mean, std_dev).max(floor)
    }

    /// Lognormal parameterized by the *underlying* normal's mu/sigma.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential with the given mean (> 0).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential: non-positive mean {mean}");
        let u: f64 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Pareto with scale `x_min` (> 0) and shape `alpha` (> 0); heavy-tailed
    /// samples used for burst modelling.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0, "pareto: bad params");
        let u: f64 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        x_min / u.powf(1.0 / alpha)
    }

    /// A value multiplicatively jittered by ±`frac` (uniform). `frac` of
    /// 0.1 yields a value in `[0.9v, 1.1v)`.
    pub fn jitter(&mut self, value: f64, frac: f64) -> f64 {
        value * (1.0 + self.uniform_range(-frac, frac))
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_streams_are_independent_of_parent_draw_count() {
        let mut a = SimRng::seed_from_u64(9);
        let child_seed_stream: Vec<u64> = {
            let mut c = a.fork();
            (0..5).map(|_| c.next_u64()).collect()
        };
        // Forking again gives a *different* child.
        let mut c2 = a.fork();
        let other: Vec<u64> = (0..5).map(|_| c2.next_u64()).collect();
        assert_ne!(child_seed_stream, other);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = SimRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_mean_is_sane() {
        let mut r = SimRng::seed_from_u64(43);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::seed_from_u64(44);
        for _ in 0..1_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(45);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SimRng::seed_from_u64(46);
        for _ in 0..1_000 {
            let v = r.jitter(10.0, 0.2);
            assert!((8.0..12.0).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(47);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_range_degenerate() {
        let mut r = SimRng::seed_from_u64(48);
        assert_eq!(r.uniform_range(3.0, 3.0), 3.0);
    }

    #[test]
    fn normal_clamped_min_floors() {
        let mut r = SimRng::seed_from_u64(49);
        for _ in 0..1_000 {
            assert!(r.normal_clamped_min(0.0, 5.0, 0.0) >= 0.0);
        }
    }
}
