//! # visionsim-core
//!
//! Foundation layer for the `visionsim` workspace: a deterministic,
//! discrete-event simulation substrate used by every other crate.
//!
//! The design follows the event-driven, sans-IO ethos of embedded network
//! stacks: all state is explicit, there is no wall-clock dependence, and a
//! simulation seeded with the same [`rng::SimRng`] seed replays identically.
//!
//! Modules:
//! * [`time`] — virtual clock ([`time::SimTime`]) with nanosecond resolution.
//! * [`units`] — data sizes ([`units::ByteSize`]) and rates ([`units::DataRate`]).
//! * [`rng`] — seeded RNG with the distribution samplers the simulator needs
//!   (normal, lognormal, exponential, Pareto) implemented in-tree.
//! * [`event`] — a monotone event queue with deterministic FIFO tie-breaking.
//! * [`stats`] — streaming summary statistics, exact percentiles, and the
//!   boxplot summaries used by the paper's figures.
//! * [`series`] — time-series recording (e.g. throughput over a session).
//! * [`par`] — deterministic parallel execution ([`par::par_map`]),
//!   collision-free per-cell seed derivation ([`par::derive_seed`]), and
//!   the supervised engine ([`par::try_par_map`]): `catch_unwind` +
//!   watchdog + retry-once + quarantine per cell.
//! * [`error`] — the shared [`error::SimError`] taxonomy every decoder
//!   and parser of hostile bytes returns.
//! * [`sanitizer`] — opt-in runtime invariant monitor (`VISIONSIM_SANITIZE=1`,
//!   always on in debug builds); violations become reports, not panics.
//! * [`trace`] — flight recorder (`VISIONSIM_TRACE=1`): bounded ring of POD
//!   [`trace::TraceEvent`]s plus the [`span!`] timing guard.
//! * [`metrics`] — typed metrics registry (`VISIONSIM_METRICS=1`): counters,
//!   gauges, and log2-bucket histograms snapshotted to `metrics.json`.
//! * [`shard`] — conservative PDES: per-shard event queues synchronized by
//!   link-latency lookahead, byte-identical at any thread or shard count.

pub mod error;
pub mod event;
pub mod metrics;
pub mod par;
pub mod rng;
pub mod sanitizer;
pub mod series;
pub mod shard;
pub mod stats;
pub mod time;
pub mod trace;
pub mod units;

pub use error::SimError;
pub use metrics::{Counter, Gauge, Histogram};
pub use trace::{TraceEvent, TraceKind};
pub use event::{EventQueue, ScheduledEvent};
pub use par::{derive_seed, par_map, try_par_map, Cell, CellError, CellFailure};
pub use rng::SimRng;
pub use series::{RateSeries, TimeSeries};
pub use shard::{ConservativeEngine, Envelope, EngineReport, ShardWorld};
pub use stats::{BoxplotSummary, Percentiles, StreamingStats};
pub use time::{SimDuration, SimTime};
pub use units::{ByteSize, DataRate};
