//! Typed metrics registry: counters, gauges, and log2-bucket histograms.
//!
//! Every crate on the hot path reports into one process-global registry —
//! `net` counts per-link bytes/drops/queue depth, `vca` counts mode
//! switches and PLI/keyframe traffic, `capture` tallies flow
//! classification verdicts, `core::par` measures per-cell wall time and
//! retries. The experiment harness snapshots the registry after each
//! artifact and writes it as `<name>.metrics.json`.
//!
//! # Allocation discipline
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`'d atomics
//! obtained once at setup via [`counter`]/[`gauge`]/[`histogram`] and
//! cached by the reporting crate (typically in a `OnceLock`'d struct).
//! Hot-path updates are single relaxed atomic ops — no locks, no heap.
//! The `alloc_gate` test pins the datapath budget with metrics forced on.
//!
//! # Determinism
//!
//! Simulation-derived metrics (class [`Class::Sim`]) are pure functions
//! of the seed and must be identical at any thread count — the
//! determinism suite compares their snapshot across 1/4/8 threads.
//! Wall-clock timings (class [`Class::Wall`]) are inherently
//! nondeterministic and are excluded from the deterministic snapshot
//! ([`snapshot_json`] with `include_wall = false`, which is what
//! `regenerate` writes).
//!
//! Enablement mirrors [`crate::sanitizer`]: a programmatic [`force`]
//! override, else the `VISIONSIM_METRICS` environment variable. Disabled
//! updates cost one relaxed atomic load.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log2 histogram buckets: bucket `i` holds values whose
/// bit-length is `i` (bucket 0 = value 0, bucket 1 = 1, bucket 2 = 2..3,
/// … bucket 64 = 2^63..).
pub const HIST_BUCKETS: usize = 65;

/// Whether a metric is derived from simulation state (deterministic for a
/// given seed) or from wall-clock measurement (never deterministic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Seed-deterministic; included in `metrics.json` and compared across
    /// thread counts.
    Sim,
    /// Wall-clock derived; excluded from the deterministic snapshot.
    Wall,
}

/// Monotonically increasing event count.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` (no-op while metrics are disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depth, bytes in flight).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Add a (possibly negative) delta (no-op while disabled).
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Overwrite the level (no-op while disabled).
    #[inline]
    pub fn set(&self, value: i64) {
        if enabled() {
            self.0.store(value, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistInner {
    fn new() -> HistInner {
        HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Distribution over fixed log2 buckets.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

/// Bucket index for a value: its bit length (0 → 0, 1 → 1, 2..3 → 2, …).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Histogram {
    /// Record one observation (no-op while disabled).
    #[inline]
    pub fn observe(&self, value: u64) {
        if enabled() {
            self.0.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
            self.0.count.fetch_add(1, Ordering::Relaxed);
            self.0.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Copy of the bucket counts.
    pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }
}

enum Value {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistInner>),
}

struct Entry {
    name: &'static str,
    class: Class,
    value: Value,
}

static REGISTRY: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

/// Effective capture state: 0 = unresolved (consult the environment),
/// 1 = off, 2 = on. A single cell — rather than a `FORCE` override
/// checked in front of a lazily-read env default — keeps the disabled
/// fast path at exactly one relaxed load and one predictable branch;
/// `enabled()` sits in front of every per-packet update on the datapath,
/// where the extra `OnceLock` probe of the two-cell scheme was measurable.
static STATE: AtomicU8 = AtomicU8::new(0);

fn env_default() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        matches!(
            std::env::var("VISIONSIM_METRICS").as_deref().map(str::trim),
            Ok("1") | Ok("on") | Ok("true")
        )
    })
}

#[cold]
fn resolve_state() -> bool {
    let on = env_default();
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Whether metric updates are being captured.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => resolve_state(),
    }
}

/// Force metrics on or off for this process (`None` restores the env
/// default). Process-global; tests that flip it should hold
/// [`crate::par::override_guard`].
pub fn force(on: Option<bool>) {
    STATE.store(
        match on {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        },
        Ordering::Relaxed,
    );
}

/// Register (or look up) a counter by name. Registration is idempotent:
/// the same name always yields a handle to the same underlying cell.
/// Panics if the name is already registered as a different metric type.
pub fn counter(name: &'static str, class: Class) -> Counter {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(entry) = reg.iter().find(|e| e.name == name) {
        match &entry.value {
            Value::Counter(cell) => return Counter(Arc::clone(cell)),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }
    let cell = Arc::new(AtomicU64::new(0));
    reg.push(Entry {
        name,
        class,
        value: Value::Counter(Arc::clone(&cell)),
    });
    Counter(cell)
}

/// Register (or look up) a gauge by name. Same idempotence contract as
/// [`counter`].
pub fn gauge(name: &'static str, class: Class) -> Gauge {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(entry) = reg.iter().find(|e| e.name == name) {
        match &entry.value {
            Value::Gauge(cell) => return Gauge(Arc::clone(cell)),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }
    let cell = Arc::new(AtomicI64::new(0));
    reg.push(Entry {
        name,
        class,
        value: Value::Gauge(Arc::clone(&cell)),
    });
    Gauge(cell)
}

/// Register (or look up) a histogram by name. Same idempotence contract
/// as [`counter`].
pub fn histogram(name: &'static str, class: Class) -> Histogram {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(entry) = reg.iter().find(|e| e.name == name) {
        match &entry.value {
            Value::Histogram(cell) => return Histogram(Arc::clone(cell)),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }
    let cell = Arc::new(HistInner::new());
    reg.push(Entry {
        name,
        class,
        value: Value::Histogram(Arc::clone(&cell)),
    });
    Histogram(cell)
}

/// The span wall-time histogram [`crate::trace::Span`] observes into.
pub fn span_wall_ns() -> Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| histogram("span/wall_ns", Class::Wall)).clone()
}

/// Zero every registered value, keeping registrations (and thus the
/// handles crates have cached). Called at artifact boundaries by the
/// harness and by tests.
pub fn reset() {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    for entry in reg.iter() {
        match &entry.value {
            Value::Counter(c) => c.store(0, Ordering::Relaxed),
            Value::Gauge(g) => g.store(0, Ordering::Relaxed),
            Value::Histogram(h) => {
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Read one registered counter's current value by name (tests, assertions
/// against external totals). `None` if no counter has that name.
pub fn counter_value(name: &str) -> Option<u64> {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    reg.iter().find(|e| e.name == name).and_then(|e| match &e.value {
        Value::Counter(c) => Some(c.load(Ordering::Relaxed)),
        _ => None,
    })
}

/// Read one registered gauge's current value by name. `None` if no gauge
/// has that name.
pub fn gauge_value(name: &str) -> Option<i64> {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    reg.iter().find(|e| e.name == name).and_then(|e| match &e.value {
        Value::Gauge(g) => Some(g.load(Ordering::Relaxed)),
        _ => None,
    })
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize the registry as a stable JSON document: metrics sorted by
/// name, histograms as `{count, sum, buckets: {bit_len: count, ...}}`
/// with empty buckets omitted. With `include_wall = false` the snapshot
/// contains only [`Class::Sim`] metrics and is byte-identical for a given
/// seed at any thread count — this is what `regenerate` writes to
/// `metrics.json`.
pub fn snapshot_json(include_wall: bool) -> String {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut entries: Vec<&Entry> = reg
        .iter()
        .filter(|e| include_wall || e.class == Class::Sim)
        .collect();
    entries.sort_by_key(|e| e.name);
    let mut out = String::from("{\n");
    for (i, entry) in entries.iter().enumerate() {
        out.push_str("  ");
        push_json_str(&mut out, entry.name);
        out.push_str(": ");
        match &entry.value {
            Value::Counter(c) => {
                out.push_str(&c.load(Ordering::Relaxed).to_string());
            }
            Value::Gauge(g) => {
                out.push_str(&g.load(Ordering::Relaxed).to_string());
            }
            Value::Histogram(h) => {
                out.push_str("{\"count\": ");
                out.push_str(&h.count.load(Ordering::Relaxed).to_string());
                out.push_str(", \"sum\": ");
                out.push_str(&h.sum.load(Ordering::Relaxed).to_string());
                out.push_str(", \"buckets\": {");
                let mut first = true;
                for (bit_len, bucket) in h.buckets.iter().enumerate() {
                    let n = bucket.load(Ordering::Relaxed);
                    if n == 0 {
                        continue;
                    }
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    out.push_str(&format!("\"{bit_len}\": {n}"));
                }
                out.push_str("}}");
            }
        }
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push('}');
    out.push('\n');
    out
}

/// A registry metric name as a Prometheus metric name: `visionsim_`
/// prefix, path separators and anything outside `[a-zA-Z0-9_:]` replaced
/// by `_` (the exposition-format name grammar).
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(10 + name.len());
    out.push_str("visionsim_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render the whole registry — both classes; a scraper wants wall-clock
/// series too — in the Prometheus text exposition format (version 0.0.4,
/// what a `GET /metrics` endpoint serves). Hand-rolled: the workspace
/// builds without a prometheus client crate.
///
/// Mapping:
/// * counters → `# TYPE … counter`, one sample;
/// * gauges → `# TYPE … gauge`, one sample;
/// * log2 histograms → `# TYPE … histogram` with cumulative
///   `_bucket{le="…"}` samples at the power-of-two upper bounds the
///   in-memory buckets already encode (bucket *i* holds values of bit
///   length *i*, so its inclusive upper edge is `2^i − 1`), plus the
///   standard `_sum`/`_count` pair and the mandatory `le="+Inf"` bucket.
///
/// Output is sorted by metric name, so consecutive scrapes of an idle
/// registry are byte-identical.
pub fn prometheus_text() -> String {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut entries: Vec<&Entry> = reg.iter().collect();
    entries.sort_by_key(|e| e.name);
    let mut out = String::new();
    for entry in entries {
        let name = prometheus_name(entry.name);
        match &entry.value {
            Value::Counter(c) => {
                out.push_str(&format!(
                    "# TYPE {name} counter\n{name} {}\n",
                    c.load(Ordering::Relaxed)
                ));
            }
            Value::Gauge(g) => {
                out.push_str(&format!(
                    "# TYPE {name} gauge\n{name} {}\n",
                    g.load(Ordering::Relaxed)
                ));
            }
            Value::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cumulative = 0u64;
                for (bit_len, bucket) in h.buckets.iter().enumerate() {
                    let n = bucket.load(Ordering::Relaxed);
                    // Empty log2 buckets are elided (65 per histogram is
                    // exposition noise), but a bucket with data always
                    // prints so the cumulative staircase is visible.
                    if n == 0 {
                        continue;
                    }
                    cumulative += n;
                    // Bit length i covers values ≤ 2^i − 1; bucket 0 is
                    // the literal value 0.
                    let le = if bit_len == 0 {
                        0u64
                    } else {
                        (1u64 << bit_len.min(63)).wrapping_sub(1).max(1)
                    };
                    let le = if bit_len >= 64 { u64::MAX } else { le };
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"{le}\"}} {cumulative}\n"
                    ));
                }
                let count = h.count.load(Ordering::Relaxed);
                out.push_str(&format!(
                    "{name}_bucket{{le=\"+Inf\"}} {count}\n{name}_sum {}\n{name}_count {count}\n",
                    h.sum.load(Ordering::Relaxed)
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::override_guard;

    #[test]
    fn disabled_metrics_record_nothing() {
        let _g = override_guard();
        force(Some(false));
        let c = counter("metrics-test/disabled_counter", Class::Sim);
        let g = gauge("metrics-test/disabled_gauge", Class::Sim);
        let h = histogram("metrics-test/disabled_hist", Class::Sim);
        c.add(5);
        g.add(3);
        h.observe(9);
        force(None);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn handles_are_shared_by_name() {
        let _g = override_guard();
        force(Some(true));
        let a = counter("metrics-test/shared", Class::Sim);
        let b = counter("metrics-test/shared", Class::Sim);
        a.add(2);
        b.add(3);
        let got = a.get();
        a.0.store(0, Ordering::Relaxed);
        force(None);
        assert_eq!(got, 5);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn name_collision_across_types_panics() {
        counter("metrics-test/collision", Class::Sim);
        gauge("metrics-test/collision", Class::Sim);
    }

    #[test]
    fn gauge_tracks_signed_level() {
        let _g = override_guard();
        force(Some(true));
        let g = gauge("metrics-test/level", Class::Sim);
        g.set(0);
        g.add(10);
        g.add(-25);
        let got = g.get();
        g.set(0);
        force(None);
        assert_eq!(got, -15);
    }

    #[test]
    fn log2_buckets_split_by_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);

        let _g = override_guard();
        force(Some(true));
        let h = histogram("metrics-test/log2", Class::Sim);
        for v in [0, 1, 2, 3, 1024] {
            h.observe(v);
        }
        let buckets = h.buckets();
        let (count, sum) = (h.count(), h.sum());
        for b in &h.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.0.count.store(0, Ordering::Relaxed);
        h.0.sum.store(0, Ordering::Relaxed);
        force(None);
        assert_eq!(count, 5);
        assert_eq!(sum, 1030);
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[2], 2);
        assert_eq!(buckets[11], 1);
    }

    #[test]
    fn snapshot_excludes_wall_metrics_unless_asked() {
        let _g = override_guard();
        force(Some(true));
        let sim = counter("metrics-test/snap_sim", Class::Sim);
        let wall = counter("metrics-test/snap_wall", Class::Wall);
        sim.add(1);
        wall.add(1);
        let deterministic = snapshot_json(false);
        let full = snapshot_json(true);
        sim.0.store(0, Ordering::Relaxed);
        wall.0.store(0, Ordering::Relaxed);
        force(None);
        assert!(deterministic.contains("metrics-test/snap_sim"));
        assert!(!deterministic.contains("metrics-test/snap_wall"));
        assert!(full.contains("metrics-test/snap_wall"));
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let _g = override_guard();
        force(Some(true));
        let b = counter("metrics-test/zz_later", Class::Sim);
        let a = counter("metrics-test/aa_earlier", Class::Sim);
        a.add(1);
        b.add(2);
        let snap = snapshot_json(false);
        a.0.store(0, Ordering::Relaxed);
        b.0.store(0, Ordering::Relaxed);
        force(None);
        let pos_a = snap.find("metrics-test/aa_earlier").expect("a present");
        let pos_b = snap.find("metrics-test/zz_later").expect("b present");
        assert!(pos_a < pos_b, "snapshot must sort by metric name");
        assert_eq!(snap, {
            // Same registry state snapshots identically.
            snap.clone()
        });
    }

    #[test]
    fn reset_zeroes_values_but_keeps_registrations() {
        let _g = override_guard();
        force(Some(true));
        let c = counter("metrics-test/reset_me", Class::Sim);
        c.add(7);
        assert_eq!(counter_value("metrics-test/reset_me"), Some(7));
        reset();
        force(None);
        assert_eq!(c.get(), 0);
        assert_eq!(counter_value("metrics-test/reset_me"), Some(0));
    }

    #[test]
    fn prometheus_names_use_exposition_charset() {
        assert_eq!(
            prometheus_name("net/link_bytes_sent"),
            "visionsim_net_link_bytes_sent"
        );
        assert_eq!(prometheus_name("metrics-test/x.y"), "visionsim_metrics_test_x_y");
    }

    #[test]
    fn prometheus_text_renders_all_metric_kinds() {
        let _g = override_guard();
        force(Some(true));
        let c = counter("metrics-test/prom_counter", Class::Sim);
        let g = gauge("metrics-test/prom_gauge", Class::Wall);
        let h = histogram("metrics-test/prom_hist", Class::Sim);
        reset();
        c.add(3);
        g.set(-4);
        h.observe(0); // bucket 0, le="0"
        h.observe(5); // bit length 3, le="7"
        h.observe(6); // same bucket
        let text = prometheus_text();
        force(None);

        assert!(text.contains("# TYPE visionsim_metrics_test_prom_counter counter\n"));
        assert!(text.contains("visionsim_metrics_test_prom_counter 3\n"));
        // Wall-class series are exported too: a live scraper wants both.
        assert!(text.contains("# TYPE visionsim_metrics_test_prom_gauge gauge\n"));
        assert!(text.contains("visionsim_metrics_test_prom_gauge -4\n"));
        // Histogram: cumulative buckets at log2 upper bounds + +Inf/sum/count.
        assert!(text.contains("# TYPE visionsim_metrics_test_prom_hist histogram\n"));
        assert!(text.contains("visionsim_metrics_test_prom_hist_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("visionsim_metrics_test_prom_hist_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("visionsim_metrics_test_prom_hist_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("visionsim_metrics_test_prom_hist_sum 11\n"));
        assert!(text.contains("visionsim_metrics_test_prom_hist_count 3\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty());
            assert!(value == "+Inf" || value.parse::<i64>().is_ok(), "{line}");
        }
    }
}
