//! Time-series recording.
//!
//! Two recorders cover the workspace's needs:
//!
//! * [`TimeSeries`] — arbitrary `(SimTime, f64)` observations, e.g. per-frame
//!   GPU time over a session.
//! * [`RateSeries`] — byte-count events bucketed into fixed windows and read
//!   back as a throughput series, which is how the paper's AP-side Wireshark
//!   captures are reduced to Mbps figures.

use crate::sanitizer;
use crate::stats::Percentiles;
use crate::time::{SimDuration, SimTime};
use crate::units::{ByteSize, DataRate};

/// A sequence of timestamped scalar observations.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Record an observation. Timestamps must be non-decreasing.
    ///
    /// # Panics
    /// If `at` precedes the last recorded timestamp.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(at >= last, "time series must be recorded in order");
        }
        sanitizer::check_finite("series/nonfinite", value);
        self.points.push((at, value));
    }

    /// All points in recording order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Values restricted to the window `[from, to)`.
    pub fn values_in(&self, from: SimTime, to: SimTime) -> Vec<f64> {
        self.points
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|&(_, v)| v)
            .collect()
    }

    /// Percentile summary over all values.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles::from_samples(self.points.iter().map(|&(_, v)| v).collect())
    }
}

/// Byte arrivals bucketed into fixed windows, read back as throughput.
#[derive(Clone, Debug)]
pub struct RateSeries {
    window: SimDuration,
    /// Bytes per window index.
    buckets: Vec<u64>,
    total: ByteSize,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl RateSeries {
    /// A recorder with the given bucketing window (must be non-zero).
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "rate series needs a non-zero window");
        RateSeries {
            window,
            buckets: Vec::new(),
            total: ByteSize::ZERO,
            first: None,
            last: None,
        }
    }

    /// A recorder with the 1-second window used by the paper's throughput
    /// plots.
    pub fn per_second() -> Self {
        RateSeries::new(SimDuration::from_secs(1))
    }

    /// Record `size` bytes arriving at `at`.
    pub fn record(&mut self, at: SimTime, size: ByteSize) {
        let idx = (at.as_nanos() / self.window.as_nanos()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += size.as_bytes();
        self.total += size;
        if self.first.is_none() {
            self.first = Some(at);
        }
        self.last = Some(match self.last {
            Some(l) if l > at => l,
            _ => at,
        });
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> ByteSize {
        self.total
    }

    /// Throughput per window, one sample per elapsed bucket (including empty
    /// buckets between the first and last arrival — silence is data).
    pub fn rates(&self) -> Vec<DataRate> {
        self.buckets
            .iter()
            .map(|&b| ByteSize::from_bytes(b).rate_over(self.window))
            .collect()
    }

    /// Mean throughput over the observed span `[first arrival, end of last
    /// bucket]`. Zero when nothing was recorded.
    pub fn mean_rate(&self) -> DataRate {
        let (Some(first), Some(_)) = (self.first, self.last) else {
            return DataRate::ZERO;
        };
        let end_bucket = self.buckets.len() as u64 * self.window.as_nanos();
        let span = SimTime::from_nanos(end_bucket).since(first);
        self.total.rate_over(span)
    }

    /// Percentile summary of per-window throughput, in Mbps. The first and
    /// last (possibly partial) windows are dropped, matching the common
    /// measurement practice of trimming session ramp-up/teardown.
    pub fn rate_percentiles_mbps(&self) -> Percentiles {
        let rates = self.rates();
        let trimmed: Vec<f64> = if rates.len() > 2 {
            rates[1..rates.len() - 1]
                .iter()
                .map(|r| r.as_mbps_f64())
                .collect()
        } else {
            rates.iter().map(|r| r.as_mbps_f64()).collect()
        };
        Percentiles::from_samples(trimmed)
    }

    /// The bucketing window.
    pub fn window(&self) -> SimDuration {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_series_orders_and_filters() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_millis(1), 1.0);
        ts.record(SimTime::from_millis(2), 2.0);
        ts.record(SimTime::from_millis(5), 5.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(
            ts.values_in(SimTime::from_millis(2), SimTime::from_millis(5)),
            vec![2.0]
        );
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn time_series_rejects_backwards_time() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_millis(5), 1.0);
        ts.record(SimTime::from_millis(1), 2.0);
    }

    #[test]
    fn rate_series_buckets_correctly() {
        let mut rs = RateSeries::per_second();
        // 1 MB in second 0, 2 MB in second 1.
        rs.record(SimTime::from_millis(100), ByteSize::from_mb(1));
        rs.record(SimTime::from_millis(1_500), ByteSize::from_mb(2));
        let rates = rs.rates();
        assert_eq!(rates.len(), 2);
        assert_eq!(rates[0], DataRate::from_mbps(8));
        assert_eq!(rates[1], DataRate::from_mbps(16));
        assert_eq!(rs.total_bytes(), ByteSize::from_mb(3));
    }

    #[test]
    fn constant_stream_mean_rate() {
        let mut rs = RateSeries::per_second();
        // 125 KB every 100 ms = 10 Mbps for 10 seconds.
        for i in 0..100u64 {
            rs.record(
                SimTime::from_millis(i * 100),
                ByteSize::from_bytes(125_000),
            );
        }
        let mean = rs.mean_rate().as_mbps_f64();
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn empty_rate_series_is_zero() {
        let rs = RateSeries::per_second();
        assert_eq!(rs.mean_rate(), DataRate::ZERO);
        assert!(rs.rates().is_empty());
    }

    #[test]
    fn silent_gaps_count_as_zero_rate() {
        let mut rs = RateSeries::per_second();
        rs.record(SimTime::from_millis(500), ByteSize::from_mb(1));
        rs.record(SimTime::from_millis(3_500), ByteSize::from_mb(1));
        let rates = rs.rates();
        assert_eq!(rates.len(), 4);
        assert_eq!(rates[1], DataRate::ZERO);
        assert_eq!(rates[2], DataRate::ZERO);
    }

    #[test]
    fn percentile_trim_drops_edges() {
        let mut rs = RateSeries::per_second();
        for s in 0..10u64 {
            // Partial first second (tiny) then steady.
            let bytes = if s == 0 { 1_000 } else { 1_250_000 };
            rs.record(
                SimTime::from_millis(s * 1_000 + 10),
                ByteSize::from_bytes(bytes),
            );
        }
        let mut p = rs.rate_percentiles_mbps();
        // After trimming the ramp-up window, everything is 10 Mbps.
        assert!((p.median() - 10.0).abs() < 1e-9);
    }
}
