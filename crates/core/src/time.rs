//! Virtual simulation time.
//!
//! The simulator never consults the wall clock. All timestamps are
//! [`SimTime`] values — nanoseconds since the start of the simulation — and
//! all intervals are [`SimDuration`] values. Nanosecond resolution keeps
//! per-frame arithmetic exact at 90 FPS (one frame = 11_111_111 ns) while a
//! `u64` still covers ~584 years of simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds since the epoch.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed time since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// One display frame at the Vision Pro's 90 FPS target (≈11.1 ms).
    pub const FRAME_90FPS: SimDuration = SimDuration(1_000_000_000 / 90);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional milliseconds (negatives clamp to zero).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e6).round() as u64)
    }

    /// Construct from fractional seconds (negatives clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this span is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest nanosecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2_000.0);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis_f64(), 500.0);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!(t + d, SimTime::from_millis(15));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, SimTime::from_millis(5));
        assert_eq!(d * 3, SimDuration::from_millis(15));
        assert_eq!(d / 5, SimDuration::from_millis(1));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_millis(8);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_millis(5));
    }

    #[test]
    fn frame_duration_is_about_11ms() {
        let f = SimDuration::FRAME_90FPS.as_millis_f64();
        assert!((f - 11.111).abs() < 0.001, "frame = {f}");
    }

    #[test]
    fn mul_f64_rounds_and_clamps() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_nanos(150));
        assert_eq!(d.mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_nanos(10) < SimDuration::from_micros(1));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_nanos(42)), "42ns");
    }
}
