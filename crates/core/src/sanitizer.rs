//! Runtime invariant sanitizer.
//!
//! An opt-in monitor that watches the simulation's load-bearing
//! invariants while it runs: per-link byte conservation in `net`,
//! virtual-time monotonicity and queue occupancy in [`crate::event`], and
//! NaN/Inf guards in [`crate::stats`]/[`crate::series`]. A violated
//! invariant produces a structured [`Violation`] report carrying the
//! offending cell's label and seed — **not** a panic — so one bad sample
//! in a multi-hour sweep is diagnosable instead of fatal.
//!
//! Enablement, highest priority first:
//! 1. a programmatic override set with [`force`] (tests),
//! 2. the `VISIONSIM_SANITIZE` environment variable (`1` on, `0` off),
//! 3. always on in debug builds, off in release builds.
//!
//! Every check is **observe-only**: recording a violation never changes
//! the computation's data flow, so artifacts are byte-identical with the
//! sanitizer on or off. (The single exception: [`crate::stats::Percentiles::push`]
//! downgrades its non-finite-sample panic to a report-and-reject, which
//! only matters on runs that would otherwise have died.)
//!
//! Context: [`crate::par::try_par_map`] tags the current thread with the
//! running cell's label and seed; violations raised underneath inherit
//! that tag, which is how a report names the cell that tripped it.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Programmatic override: 0 = unset, 1 = forced off, 2 = forced on.
static FORCE: AtomicU8 = AtomicU8::new(0);

/// Total violations observed since process start (or the last [`reset`]),
/// including any dropped past the retention cap.
static TOTAL: AtomicU64 = AtomicU64::new(0);

/// Retained violation reports (first [`RETAIN`] only).
static REPORTS: Mutex<Vec<Violation>> = Mutex::new(Vec::new());

/// How many violation reports are retained verbatim; the total count keeps
/// incrementing past this so a violation storm cannot exhaust memory.
pub const RETAIN: usize = 1024;

thread_local! {
    /// The (label, seed) of the supervised cell running on this thread.
    static CONTEXT: RefCell<Option<(String, u64)>> = const { RefCell::new(None) };
}

/// One recorded invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable identifier of the check site (e.g. `"net/conservation"`).
    pub site: &'static str,
    /// Human-readable description of what went wrong.
    pub detail: String,
    /// Label of the supervised cell that tripped the check, if any.
    pub label: Option<String>,
    /// Seed of the supervised cell that tripped the check, if any.
    pub seed: Option<u64>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.site, self.detail)?;
        match (&self.label, self.seed) {
            (Some(l), Some(s)) => write!(f, " (cell {l}, seed {s})"),
            (Some(l), None) => write!(f, " (cell {l})"),
            _ => Ok(()),
        }
    }
}

fn env_default() -> Option<bool> {
    static ENV: OnceLock<Option<bool>> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("VISIONSIM_SANITIZE") {
        Ok(v) => match v.trim() {
            "1" | "on" | "true" => Some(true),
            "0" | "off" | "false" => Some(false),
            _ => None,
        },
        Err(_) => None,
    })
}

/// Whether the sanitizer is currently recording.
pub fn enabled() -> bool {
    match FORCE.load(Ordering::Relaxed) {
        1 => return false,
        2 => return true,
        _ => {}
    }
    env_default().unwrap_or(cfg!(debug_assertions))
}

/// Force the sanitizer on or off for this process (`None` restores the
/// env/build-profile default). Process-global, like
/// [`crate::par::set_threads`]; tests that flip it should hold
/// [`crate::par::override_guard`].
pub fn force(on: Option<bool>) {
    FORCE.store(
        match on {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        },
        Ordering::Relaxed,
    );
}

/// Tag the current thread with a supervised cell's identity; violations
/// raised on this thread inherit it until [`clear_context`].
pub fn set_context(label: &str, seed: u64) {
    CONTEXT.with(|c| *c.borrow_mut() = Some((label.to_string(), seed)));
}

/// Drop the current thread's cell tag.
pub fn clear_context() {
    CONTEXT.with(|c| *c.borrow_mut() = None);
}

/// Record a violation (no-op when the sanitizer is disabled).
pub fn report(site: &'static str, detail: String) {
    if !enabled() {
        return;
    }
    TOTAL.fetch_add(1, Ordering::Relaxed);
    let (label, seed) = CONTEXT.with(|c| match &*c.borrow() {
        Some((l, s)) => (Some(l.clone()), Some(*s)),
        None => (None, None),
    });
    let mut reports = REPORTS.lock().unwrap_or_else(|e| e.into_inner());
    if reports.len() < RETAIN {
        reports.push(Violation {
            site,
            detail,
            label,
            seed,
        });
    }
}

/// Record a violation if `condition` is false. The detail closure only
/// runs on failure, so hot paths pay one branch when healthy.
#[inline]
pub fn check(condition: bool, site: &'static str, detail: impl FnOnce() -> String) {
    if !condition {
        report(site, detail());
    }
}

/// Convenience guard for sample streams: report if `value` is NaN/Inf.
#[inline]
pub fn check_finite(site: &'static str, value: f64) {
    if enabled() && !value.is_finite() {
        report(site, format!("non-finite sample {value}"));
    }
}

/// Violations observed so far (including any past the retention cap).
pub fn total() -> u64 {
    TOTAL.load(Ordering::Relaxed)
}

/// Drain the retained reports. The total count is *not* reset.
pub fn take() -> Vec<Violation> {
    std::mem::take(&mut *REPORTS.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Reset both the retained reports and the total count (tests).
pub fn reset() {
    REPORTS.lock().unwrap_or_else(|e| e.into_inner()).clear();
    TOTAL.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::override_guard;

    #[test]
    fn report_records_context_and_counts() {
        let _g = override_guard();
        force(Some(true));
        reset();
        set_context("figure4/F*", 77);
        report("test/site", "something drifted".into());
        clear_context();
        report("test/site", "untagged".into());
        let v = take();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].label.as_deref(), Some("figure4/F*"));
        assert_eq!(v[0].seed, Some(77));
        assert!(v[1].label.is_none());
        assert_eq!(total(), 2);
        assert!(v[0].to_string().contains("figure4/F*"));
        force(None);
        reset();
    }

    #[test]
    fn disabled_sanitizer_records_nothing() {
        let _g = override_guard();
        force(Some(false));
        reset();
        report("test/site", "dropped".into());
        check(false, "test/site", || "also dropped".into());
        assert_eq!(total(), 0);
        assert!(take().is_empty());
        force(None);
    }

    #[test]
    fn check_only_fires_on_false() {
        let _g = override_guard();
        force(Some(true));
        reset();
        check(true, "test/site", || unreachable!("healthy path allocates"));
        assert_eq!(total(), 0);
        check(false, "test/site", || "tripped".into());
        assert_eq!(total(), 1);
        force(None);
        reset();
    }

    #[test]
    fn retention_is_capped_but_total_is_not() {
        let _g = override_guard();
        force(Some(true));
        reset();
        for i in 0..(RETAIN + 10) {
            report("test/flood", format!("v{i}"));
        }
        assert_eq!(take().len(), RETAIN);
        assert_eq!(total(), (RETAIN + 10) as u64);
        force(None);
        reset();
    }
}
