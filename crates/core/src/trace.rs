//! The flight recorder: a bounded ring buffer of POD trace events.
//!
//! The simulator's artifacts are end-state summaries; when a chaos cell
//! quarantines or a golden checksum drifts, the final numbers say nothing
//! about *what the simulation was doing*. This module records the load-
//! bearing moments of a run — packet send/deliver/drop, rendering-mode
//! switches, fault onset/recovery, SFU failover, cell lifecycle, timing
//! spans — into a fixed-capacity ring that overwrites its oldest entries,
//! exactly like an aircraft flight recorder: the tail of history leading
//! up to an incident is always available, and a healthy multi-hour run
//! costs a bounded amount of memory.
//!
//! # Steady-state allocation discipline
//!
//! The ring is preallocated to [`capacity`] events the moment tracing is
//! enabled; [`record`] writes a [`TraceEvent`] (a `Copy` POD) into the
//! next slot under a mutex and never allocates. Site labels are interned
//! once into a side table ([`intern`]) — hot-path callers intern their
//! static site strings at setup time and pass the integer id per event.
//! The `alloc_gate` integration test pins the datapath's per-hop budget
//! with tracing forced **on** as well as off.
//!
//! Enablement, highest priority first:
//! 1. a programmatic override set with [`force`] (tests),
//! 2. the `VISIONSIM_TRACE` environment variable (`1` on, `0`/unset off).
//!
//! Disabled tracing costs one relaxed atomic load per [`record`] call.
//!
//! # Ordering
//!
//! Every event carries a process-global `seq` stamp. Supervised cells run
//! on multiple threads, so ring insertion order interleaves arbitrarily;
//! consumers that want a stable timeline sort by `(time_ns, seq)` — the
//! `trace_dump` binary and [`snapshot_sorted`] do exactly that.

use crate::error::SimError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// What a [`TraceEvent`] describes. The discriminant is the on-disk byte.
#[repr(u8)]
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceKind {
    /// A packet entered the network. `a` = packet seq, `b` = src addr,
    /// `c` = dst addr.
    PacketSend = 0,
    /// A packet reached its destination inbox. `a` = packet seq,
    /// `b` = destination node index.
    PacketDeliver = 1,
    /// A packet was dropped (queue or impairment). `a` = packet seq,
    /// `b` = link index.
    PacketDrop = 2,
    /// A participant's rendering mode changed. `a` = participant index,
    /// `b` = mode (0 spatial, 1 2D-fallback).
    ModeSwitch = 3,
    /// A scheduled fault fired. `site` names the fault kind,
    /// `a` = participant index.
    FaultOnset = 4,
    /// A scheduled fault cleared. `site` names the fault kind,
    /// `a` = participant index.
    FaultRecovery = 5,
    /// The session reattached to a new SFU site. `site` names the site.
    SfuFailover = 6,
    /// A supervised cell started an attempt. `site` = cell label,
    /// `a` = derived seed.
    CellStart = 7,
    /// A supervised cell is being retried after a failure. `site` = cell
    /// label, `a` = derived seed.
    CellRetry = 8,
    /// A supervised cell was quarantined. `site` = cell label,
    /// `a` = derived seed, `b` = 0 panic / 1 timeout.
    CellQuarantine = 9,
    /// A timing span opened. `site` = span label, `a` = seed.
    SpanEnter = 10,
    /// A timing span closed. `site` = span label, `a` = seed,
    /// `c` = wall nanoseconds spent inside the span.
    SpanExit = 11,
    /// A packet was dropped by a finite FIFO queue (drop-tail overflow at
    /// a serializer or shaper). `a` = packet seq, `b` = link index,
    /// `c` = packet wire bytes.
    QueueDrop = 12,
    /// An RTCP-style receiver report reached its sender. `a` = flow/ssrc,
    /// `b` = loss fraction in per-mille, `c` = arrival-rate estimate in
    /// kbps.
    RtcpReport = 13,
    /// A congestion controller changed state. `a` = flow/ssrc, `b` = new
    /// state (0 increase, 1 hold, 2 decrease), `c` = target rate in kbps.
    CtrlState = 14,
    /// A site refused a join/rejoin. `site` names the site, `a` =
    /// participant index, `b` = reason (0 capacity, 1 session cap,
    /// 2 health), `c` = participants attached at the verdict.
    AdmissionReject = 15,
    /// A per-site circuit breaker opened after repeated failed
    /// reconnects. `site` names the site, `a` = consecutive failures,
    /// `c` = reopen (half-open) deadline in ns.
    BreakerOpen = 16,
    /// An open breaker's deterministic timer elapsed: one trial attempt
    /// is allowed through. `site` names the site.
    BreakerHalfOpen = 17,
    /// A half-open breaker saw a successful attempt and closed. `site`
    /// names the site.
    BreakerClose = 18,
    /// A reconnecting participant fired an attempt. `site` names the
    /// candidate site ("" when no live candidate existed), `a` =
    /// participant index, `b` = attempt number (1-based), `c` = verdict
    /// (0 admitted, 1 rejected, 2 no candidate).
    ReconnectAttempt = 19,
}

impl TraceKind {
    /// Stable human-readable name (what `trace_dump` prints).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::PacketSend => "packet_send",
            TraceKind::PacketDeliver => "packet_deliver",
            TraceKind::PacketDrop => "packet_drop",
            TraceKind::ModeSwitch => "mode_switch",
            TraceKind::FaultOnset => "fault_onset",
            TraceKind::FaultRecovery => "fault_recovery",
            TraceKind::SfuFailover => "sfu_failover",
            TraceKind::CellStart => "cell_start",
            TraceKind::CellRetry => "cell_retry",
            TraceKind::CellQuarantine => "cell_quarantine",
            TraceKind::SpanEnter => "span_enter",
            TraceKind::SpanExit => "span_exit",
            TraceKind::QueueDrop => "queue_drop",
            TraceKind::RtcpReport => "rtcp_report",
            TraceKind::CtrlState => "ctrl_state",
            TraceKind::AdmissionReject => "admission_reject",
            TraceKind::BreakerOpen => "breaker_open",
            TraceKind::BreakerHalfOpen => "breaker_half_open",
            TraceKind::BreakerClose => "breaker_close",
            TraceKind::ReconnectAttempt => "reconnect_attempt",
        }
    }

    fn from_u8(b: u8) -> Option<TraceKind> {
        Some(match b {
            0 => TraceKind::PacketSend,
            1 => TraceKind::PacketDeliver,
            2 => TraceKind::PacketDrop,
            3 => TraceKind::ModeSwitch,
            4 => TraceKind::FaultOnset,
            5 => TraceKind::FaultRecovery,
            6 => TraceKind::SfuFailover,
            7 => TraceKind::CellStart,
            8 => TraceKind::CellRetry,
            9 => TraceKind::CellQuarantine,
            10 => TraceKind::SpanEnter,
            11 => TraceKind::SpanExit,
            12 => TraceKind::QueueDrop,
            13 => TraceKind::RtcpReport,
            14 => TraceKind::CtrlState,
            15 => TraceKind::AdmissionReject,
            16 => TraceKind::BreakerOpen,
            17 => TraceKind::BreakerHalfOpen,
            18 => TraceKind::BreakerClose,
            19 => TraceKind::ReconnectAttempt,
            _ => return None,
        })
    }
}

/// One recorded moment. Plain `Copy` data: writing one into the ring moves
/// 56 bytes and touches no heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event time in nanoseconds. Simulation events carry **virtual**
    /// time; harness events (cells, spans) carry wall nanoseconds since
    /// the process's trace epoch.
    pub time_ns: u64,
    /// Process-global order stamp; `(time_ns, seq)` is a total order.
    pub seq: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Interned label id ([`intern`] / [`site_name`]); 0 means "no label".
    pub site: u32,
    /// Kind-specific operand (see [`TraceKind`] docs).
    pub a: u64,
    /// Kind-specific operand.
    pub b: u64,
    /// Kind-specific operand.
    pub c: u64,
}

/// Bytes one event occupies in the [`encode`]d binary image.
const EVENT_WIRE_BYTES: usize = 45;
/// Magic prefix of a `trace.bin` image.
const TRACE_MAGIC: &[u8; 8] = b"VSTRACE1";

/// Effective capture state: 0 = unresolved (consult the environment),
/// 1 = off, 2 = on. One cell instead of a `FORCE` override in front of a
/// lazily-read env default: `enabled()` guards every hot-path `record`
/// site, and the single-load scheme keeps the disabled cost to one
/// relaxed load plus a predictable branch.
static STATE: AtomicU8 = AtomicU8::new(0);
/// Process-global order stamp source.
static SEQ: AtomicU64 = AtomicU64::new(0);
/// Events recorded since process start / last [`reset`] (including any
/// overwritten in the ring).
static TOTAL: AtomicU64 = AtomicU64::new(0);

struct Ring {
    buf: Vec<TraceEvent>,
    /// Slot the next event lands in.
    head: usize,
    /// Live events (≤ `buf.capacity()` once warmed).
    len: usize,
    /// Events overwritten because the ring was full.
    overwritten: u64,
}

static RING: Mutex<Ring> = Mutex::new(Ring {
    buf: Vec::new(),
    head: 0,
    len: 0,
    overwritten: 0,
});

/// Interned site labels; id 0 is the empty label. The `Vec` is the
/// id → label direction (what [`site_name`] and [`encode`] read); the
/// `HashMap` is the label → id index that keeps [`intern`] O(1) instead
/// of a linear scan per call.
struct SiteTable {
    by_id: Vec<String>,
    index: HashMap<String, u32>,
}

impl SiteTable {
    /// Intern into this table: existing labels return their id, new
    /// labels are appended while under `cap`, and `None` means the table
    /// is full (the caller records the refusal and uses id 0).
    fn intern(&mut self, site: &str, cap: usize) -> Option<u32> {
        if let Some(&id) = self.index.get(site) {
            return Some(id);
        }
        if self.by_id.len() >= cap {
            return None;
        }
        self.by_id.push(site.to_string());
        let id = self.by_id.len() as u32;
        self.index.insert(site.to_string(), id);
        Some(id)
    }
}

static SITES: std::sync::LazyLock<Mutex<SiteTable>> =
    std::sync::LazyLock::new(|| {
        Mutex::new(SiteTable {
            by_id: Vec::new(),
            index: HashMap::new(),
        })
    });

/// Distinct labels the intern table will hold before refusing new ones.
/// A long-running service that interns per-entity strings (a bug, but a
/// survivable one) stops growing here instead of leaking; overflowed
/// labels intern as id 0 ("no label") and are tallied in
/// [`intern_overflow`]. Already-interned labels keep their ids forever —
/// encode/decode id stability is unaffected by the cap.
pub const INTERN_CAP: usize = 65_536;

/// Labels refused by [`intern`] because the table was at [`INTERN_CAP`].
static INTERN_OVERFLOW: AtomicU64 = AtomicU64::new(0);

fn env_default() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        matches!(
            std::env::var("VISIONSIM_TRACE").as_deref().map(str::trim),
            Ok("1") | Ok("on") | Ok("true")
        )
    })
}

/// Ring capacity in events: `VISIONSIM_TRACE_CAP`, default 65 536
/// (~3.4 MB resident when enabled).
pub fn capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("VISIONSIM_TRACE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(65_536)
    })
}

#[cold]
fn resolve_state() -> bool {
    let on = env_default();
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Whether the recorder is currently capturing.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => resolve_state(),
    }
}

fn ensure_ring(ring: &mut Ring) {
    if ring.buf.capacity() == 0 {
        ring.buf.reserve_exact(capacity());
    }
}

/// Force tracing on or off for this process (`None` restores the env
/// default). Forcing **on** preallocates the ring so subsequent hot-path
/// [`record`] calls stay allocation-free. Process-global, like
/// [`crate::par::set_threads`]; tests that flip it should hold
/// [`crate::par::override_guard`].
pub fn force(on: Option<bool>) {
    STATE.store(
        match on {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        },
        Ordering::Relaxed,
    );
    if on == Some(true) {
        ensure_ring(&mut RING.lock().unwrap_or_else(|e| e.into_inner()));
    }
}

/// Intern a site label, returning its stable id for this process. The
/// empty string is always id 0. Interning may allocate — call it at setup
/// time, not per event.
///
/// The table is a hash index over an append-only id vector: lookups are
/// O(1) however many labels a long-running service accumulates, and the
/// table is bounded at [`INTERN_CAP`] distinct labels — beyond that, new
/// labels intern as 0 (unlabeled) and [`intern_overflow`] counts the
/// refusals. Ids already handed out never change or get evicted, so
/// encoded trace images stay decodable for the life of the process.
pub fn intern(site: &str) -> u32 {
    if site.is_empty() {
        return 0;
    }
    let mut sites = SITES.lock().unwrap_or_else(|e| e.into_inner());
    match sites.intern(site, INTERN_CAP) {
        Some(id) => id,
        None => {
            INTERN_OVERFLOW.fetch_add(1, Ordering::Relaxed);
            0
        }
    }
}

/// Labels [`intern`] refused because the table was full. A nonzero value
/// means some events carry id 0 instead of their label — a symptom of
/// per-entity label generation, which the cap turns from a leak into a
/// counter.
pub fn intern_overflow() -> u64 {
    INTERN_OVERFLOW.load(Ordering::Relaxed)
}

/// Distinct labels currently interned (soak tests watch this for
/// unbounded growth; it can never exceed [`INTERN_CAP`]).
pub fn intern_len() -> usize {
    SITES.lock().unwrap_or_else(|e| e.into_inner()).by_id.len()
}

/// The label behind an interned id (empty string for 0 or unknown ids).
pub fn site_name(id: u32) -> String {
    if id == 0 {
        return String::new();
    }
    let sites = SITES.lock().unwrap_or_else(|e| e.into_inner());
    sites
        .by_id
        .get(id as usize - 1)
        .cloned()
        .unwrap_or_default()
}

/// Record one event. No-op when tracing is disabled; when enabled, the
/// write is a mutex-guarded POD store into the preallocated ring — no
/// heap allocation in steady state.
pub fn record(kind: TraceKind, time_ns: u64, site: u32, a: u64, b: u64, c: u64) {
    if !enabled() {
        return;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    TOTAL.fetch_add(1, Ordering::Relaxed);
    let ev = TraceEvent {
        time_ns,
        seq,
        kind,
        site,
        a,
        b,
        c,
    };
    let mut ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    ensure_ring(&mut ring);
    let cap = ring.buf.capacity();
    if ring.len < cap {
        // `head` trails `len` until the first wrap, so this is a push.
        ring.buf.push(ev);
        ring.len += 1;
        ring.head = ring.len % cap;
    } else {
        let head = ring.head;
        ring.buf[head] = ev;
        ring.head = (head + 1) % cap;
        ring.overwritten += 1;
    }
}

/// Events recorded since process start or the last [`reset`], including
/// any the ring has already overwritten.
pub fn recorded_total() -> u64 {
    TOTAL.load(Ordering::Relaxed)
}

/// Events lost to ring overwrite so far.
pub fn overwritten() -> u64 {
    RING.lock().unwrap_or_else(|e| e.into_inner()).overwritten
}

/// Drain the ring, returning the retained events in insertion order
/// (oldest surviving first).
pub fn take() -> Vec<TraceEvent> {
    let mut ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::with_capacity(ring.len);
    if ring.len > 0 {
        let cap = ring.buf.capacity();
        let start = if ring.len < cap { 0 } else { ring.head };
        for i in 0..ring.len {
            out.push(ring.buf[(start + i) % ring.buf.len()]);
        }
    }
    ring.buf.clear();
    ring.head = 0;
    ring.len = 0;
    out
}

/// Copy of the retained events sorted by `(time_ns, seq)` — the stable
/// timeline order. The ring is left untouched.
pub fn snapshot_sorted() -> Vec<TraceEvent> {
    let mut events = {
        let ring = RING.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(ring.len);
        if ring.len > 0 {
            let cap = ring.buf.capacity();
            let start = if ring.len < cap { 0 } else { ring.head };
            for i in 0..ring.len {
                out.push(ring.buf[(start + i) % ring.buf.len()]);
            }
        }
        out
    };
    events.sort_by_key(|e| (e.time_ns, e.seq));
    events
}

/// Drop every retained event and reset the counters (tests and the
/// per-artifact harness boundary). The site intern table is kept — ids
/// stay stable for the life of the process — and the wall epoch is
/// untouched; a service that wants a whole new recording era calls
/// [`reset_epoch`] as well. The global `seq` stamp keeps counting across
/// resets, so [`follow`] cursors from before a reset stay valid (the
/// cleared events simply count as dropped).
pub fn reset() {
    let mut ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    ring.buf.clear();
    ring.head = 0;
    ring.len = 0;
    ring.overwritten = 0;
    TOTAL.store(0, Ordering::Relaxed);
}

/// The wall-clock epoch [`wall_ns`] measures from. `None` until first
/// use; a batch process sets it once and never moves it.
static EPOCH: Mutex<Option<std::time::Instant>> = Mutex::new(None);

/// Nanoseconds since the process's trace epoch (first call, or the last
/// [`reset_epoch`]). Wall time, for harness-side events that have no
/// virtual clock.
pub fn wall_ns() -> u64 {
    let mut epoch = EPOCH.lock().unwrap_or_else(|e| e.into_inner());
    epoch
        .get_or_insert_with(std::time::Instant::now)
        .elapsed()
        .as_nanos() as u64
}

/// Restart the wall epoch at "now".
///
/// The original `OnceLock` epoch was process-global and immortal — fine
/// for a batch run that exits after one artifact sweep, wrong for a
/// never-exiting service where "nanoseconds since process start" drifts
/// arbitrarily far from the current recording era. Semantics:
///
/// * Events recorded **after** the call stamp wall times measured from
///   the call instant; events already in the ring keep their old stamps.
///   Mixing eras in one ring makes `(time_ns, seq)` ordering lie across
///   the boundary, so callers reset the ring in the same breath
///   (typically [`reset`] then `reset_epoch`, the service's
///   epoch-boundary sequence).
/// * The virtual-clock times simulation events carry are unaffected.
/// * [`follow`] cursors survive: they are keyed on `seq`, which never
///   rewinds.
pub fn reset_epoch() {
    *EPOCH.lock().unwrap_or_else(|e| e.into_inner()) = Some(std::time::Instant::now());
}

/// What one [`follow`] poll returned.
#[derive(Debug, Default)]
pub struct FollowChunk {
    /// Retained events with `seq >= cursor`, in `(time_ns, seq)` order.
    pub events: Vec<TraceEvent>,
    /// Pass this as the next poll's cursor.
    pub cursor: u64,
    /// Events the ring overwrote (or a [`reset`] cleared) before this
    /// poll could read them — the tail loss a too-slow follower sees.
    pub dropped: u64,
}

/// Tail the ring without draining it: everything recorded at or after
/// `cursor` (a `seq` watermark; start at 0) that still survives in the
/// ring. The ring is left untouched, so a live follower (`trace_dump
/// --follow`, the service's sidecar flush) coexists with the harness's
/// end-of-artifact [`take`].
///
/// Concurrency caveat: the returned cursor is `max(seq) + 1` over the
/// events this poll observed. `seq` is allocated atomically *before*
/// the mutex-guarded ring store ([`record`]), so under concurrent
/// recording an event whose `seq` was handed out before the poll but
/// stored after it lands below the advanced cursor and is skipped
/// **permanently**, not picked up later. Callers that need lossless
/// tailing must ensure record and follow run on the same thread — the
/// service's single-threaded pacing loop does exactly that.
pub fn follow(cursor: u64) -> FollowChunk {
    let ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut min_retained = u64::MAX;
    if ring.len > 0 {
        let cap = ring.buf.capacity();
        let start = if ring.len < cap { 0 } else { ring.head };
        for i in 0..ring.len {
            let ev = ring.buf[(start + i) % ring.buf.len()];
            min_retained = min_retained.min(ev.seq);
            if ev.seq >= cursor {
                events.push(ev);
            }
        }
    }
    drop(ring);
    let dropped = if min_retained != u64::MAX {
        min_retained.saturating_sub(cursor)
    } else {
        0
    };
    events.sort_by_key(|e| (e.time_ns, e.seq));
    let next = events
        .iter()
        .map(|e| e.seq + 1)
        .max()
        .unwrap_or(cursor);
    FollowChunk {
        events,
        cursor: next,
        dropped,
    }
}

/// Serialize events (plus the site table entries they reference) into the
/// `trace.bin` image `trace_dump` reads.
pub fn encode(events: &[TraceEvent]) -> Vec<u8> {
    let sites = SITES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .by_id
        .clone();
    encode_with_sites(events, &sites)
}

/// [`encode`] with an explicit site table (decode → re-encode round trips).
pub fn encode_with_sites(events: &[TraceEvent], sites: &[String]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 + events.len() * EVENT_WIRE_BYTES);
    out.extend_from_slice(TRACE_MAGIC);
    out.extend_from_slice(&(sites.len() as u32).to_le_bytes());
    for s in sites {
        let bytes = s.as_bytes();
        out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    out.extend_from_slice(&(events.len() as u64).to_le_bytes());
    for e in events {
        out.extend_from_slice(&e.time_ns.to_le_bytes());
        out.extend_from_slice(&e.seq.to_le_bytes());
        out.push(e.kind as u8);
        out.extend_from_slice(&e.site.to_le_bytes());
        out.extend_from_slice(&e.a.to_le_bytes());
        out.extend_from_slice(&e.b.to_le_bytes());
        out.extend_from_slice(&e.c.to_le_bytes());
    }
    out
}

fn take_bytes<'a>(bytes: &'a [u8], pos: &mut usize, n: usize, what: &'static str) -> Result<&'a [u8], SimError> {
    let end = pos.checked_add(n).ok_or(SimError::Truncated { what })?;
    let slice = bytes.get(*pos..end).ok_or(SimError::Truncated { what })?;
    *pos = end;
    Ok(slice)
}

fn le_u64(b: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(b);
    u64::from_le_bytes(buf)
}

/// Parse a `trace.bin` image back into its site table and events.
/// Hostile or truncated input returns a [`SimError`], never a panic.
pub fn decode(bytes: &[u8]) -> Result<(Vec<String>, Vec<TraceEvent>), SimError> {
    let mut pos = 0usize;
    let magic = take_bytes(bytes, &mut pos, 8, "trace magic")?;
    if magic != TRACE_MAGIC {
        return Err(SimError::Corrupt {
            what: "trace magic",
        });
    }
    let site_count = u32::from_le_bytes(
        take_bytes(bytes, &mut pos, 4, "trace site count")?
            .try_into()
            .expect("4 bytes"),
    ) as usize;
    // A claimed count beyond what the remaining bytes could possibly hold
    // (2 bytes minimum per entry) is hostile, not just truncated.
    if site_count > bytes.len().saturating_sub(pos) / 2 {
        return Err(SimError::LimitExceeded {
            what: "trace site count",
            limit: (bytes.len() / 2) as u64,
        });
    }
    let mut sites = Vec::with_capacity(site_count);
    for _ in 0..site_count {
        let len = u16::from_le_bytes(
            take_bytes(bytes, &mut pos, 2, "trace site length")?
                .try_into()
                .expect("2 bytes"),
        ) as usize;
        let raw = take_bytes(bytes, &mut pos, len, "trace site bytes")?;
        let s = std::str::from_utf8(raw).map_err(|_| SimError::Corrupt {
            what: "trace site utf-8",
        })?;
        sites.push(s.to_string());
    }
    let count = le_u64(take_bytes(bytes, &mut pos, 8, "trace event count")?) as usize;
    let remaining = bytes.len() - pos;
    if count != remaining / EVENT_WIRE_BYTES || !remaining.is_multiple_of(EVENT_WIRE_BYTES) {
        return Err(SimError::Inconsistent {
            what: "trace event count vs body length",
        });
    }
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        let time_ns = le_u64(take_bytes(bytes, &mut pos, 8, "trace event")?);
        let seq = le_u64(take_bytes(bytes, &mut pos, 8, "trace event")?);
        let kind_byte = take_bytes(bytes, &mut pos, 1, "trace event")?[0];
        let kind = TraceKind::from_u8(kind_byte).ok_or(SimError::Inconsistent {
            what: "trace event kind",
        })?;
        let site = u32::from_le_bytes(
            take_bytes(bytes, &mut pos, 4, "trace event")?
                .try_into()
                .expect("4 bytes"),
        );
        if site as usize > sites.len() {
            return Err(SimError::Inconsistent {
                what: "trace event site id",
            });
        }
        let a = le_u64(take_bytes(bytes, &mut pos, 8, "trace event")?);
        let b = le_u64(take_bytes(bytes, &mut pos, 8, "trace event")?);
        let c = le_u64(take_bytes(bytes, &mut pos, 8, "trace event")?);
        events.push(TraceEvent {
            time_ns,
            seq,
            kind,
            site,
            a,
            b,
            c,
        });
    }
    Ok((sites, events))
}

/// RAII timing span: records [`TraceKind::SpanEnter`] on construction and
/// [`TraceKind::SpanExit`] (carrying the wall nanoseconds spent) on drop,
/// and observes the duration into the `span/wall_ns` metrics histogram.
/// Constructed via [`crate::span!`].
pub struct Span {
    site: u32,
    seed: u64,
    started: std::time::Instant,
    live: bool,
}

impl Span {
    /// Open a span. When tracing and metrics are both disabled this is a
    /// cheap no-op shell (two atomic loads, no interning).
    pub fn enter(site: &str, seed: u64) -> Span {
        let live = enabled() || crate::metrics::enabled();
        let site = if live { intern(site) } else { 0 };
        if enabled() {
            record(TraceKind::SpanEnter, wall_ns(), site, seed, 0, 0);
        }
        Span {
            site,
            seed,
            started: std::time::Instant::now(),
            live,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let spent = self.started.elapsed().as_nanos() as u64;
        if enabled() {
            record(TraceKind::SpanExit, wall_ns(), self.site, self.seed, 0, spent);
        }
        crate::metrics::span_wall_ns().observe(spent);
    }
}

/// Open a [`trace::Span`](Span) guard: `let _s = span!("figure4/cell", seed);`
#[macro_export]
macro_rules! span {
    ($site:expr, $seed:expr) => {
        $crate::trace::Span::enter($site, $seed)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::override_guard;

    #[test]
    fn disabled_recorder_captures_nothing() {
        let _g = override_guard();
        force(Some(false));
        reset();
        record(TraceKind::PacketSend, 1, 0, 1, 2, 3);
        assert_eq!(recorded_total(), 0);
        assert!(take().is_empty());
        force(None);
    }

    #[test]
    fn record_take_round_trip_preserves_fields() {
        let _g = override_guard();
        force(Some(true));
        reset();
        let site = intern("test/site");
        record(TraceKind::ModeSwitch, 42, site, 7, 1, 0);
        let events = take();
        force(None);
        assert_eq!(events.len(), 1);
        let e = events[0];
        assert_eq!(e.time_ns, 42);
        assert_eq!(e.kind, TraceKind::ModeSwitch);
        assert_eq!(site_name(e.site), "test/site");
        assert_eq!((e.a, e.b, e.c), (7, 1, 0));
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let _g = override_guard();
        force(Some(true));
        reset();
        let cap = capacity();
        for i in 0..(cap as u64 + 10) {
            record(TraceKind::PacketSend, i, 0, i, 0, 0);
        }
        let events = take();
        let total = recorded_total();
        let lost = overwritten();
        reset();
        force(None);
        assert_eq!(events.len(), cap);
        assert_eq!(total, cap as u64 + 10);
        assert_eq!(lost, 10);
        // Oldest surviving event is the 11th recorded.
        assert_eq!(events[0].a, 10);
        assert_eq!(events[cap - 1].a, cap as u64 + 9);
    }

    #[test]
    fn snapshot_sorts_by_time_then_seq() {
        let _g = override_guard();
        force(Some(true));
        reset();
        record(TraceKind::PacketSend, 30, 0, 0, 0, 0);
        record(TraceKind::PacketSend, 10, 0, 1, 0, 0);
        record(TraceKind::PacketSend, 10, 0, 2, 0, 0);
        let sorted = snapshot_sorted();
        reset();
        force(None);
        let times: Vec<u64> = sorted.iter().map(|e| e.time_ns).collect();
        assert_eq!(times, vec![10, 10, 30]);
        // Same-instant events keep their recording order via seq.
        assert!(sorted[0].seq < sorted[1].seq);
    }

    #[test]
    fn intern_is_stable_and_reversible() {
        let a = intern("trace-test/alpha");
        let b = intern("trace-test/beta");
        assert_ne!(a, b);
        assert_eq!(a, intern("trace-test/alpha"));
        assert_eq!(site_name(a), "trace-test/alpha");
        assert_eq!(intern(""), 0);
        assert_eq!(site_name(0), "");
    }

    #[test]
    fn binary_image_round_trips() {
        let site = intern("trace-test/encode");
        let events = vec![
            TraceEvent {
                time_ns: 5,
                seq: 0,
                kind: TraceKind::CellStart,
                site,
                a: 99,
                b: 0,
                c: 0,
            },
            TraceEvent {
                time_ns: 6,
                seq: 1,
                kind: TraceKind::SpanExit,
                site: 0,
                a: 1,
                b: 2,
                c: 3,
            },
        ];
        let image = encode(&events);
        let (sites, decoded) = decode(&image).expect("own image decodes");
        assert_eq!(decoded, events);
        assert_eq!(sites[site as usize - 1], "trace-test/encode");
    }

    #[test]
    fn hostile_images_error_instead_of_panicking() {
        assert_eq!(
            decode(b"short"),
            Err(SimError::Truncated {
                what: "trace magic"
            })
        );
        assert_eq!(
            decode(b"NOTTRACE\x00\x00\x00\x00"),
            Err(SimError::Corrupt {
                what: "trace magic"
            })
        );
        // Hostile site count.
        let mut image = Vec::new();
        image.extend_from_slice(TRACE_MAGIC);
        image.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(&image),
            Err(SimError::LimitExceeded { .. })
        ));
        // Truncated event body.
        let good = encode(&[TraceEvent {
            time_ns: 1,
            seq: 0,
            kind: TraceKind::PacketSend,
            site: 0,
            a: 0,
            b: 0,
            c: 0,
        }]);
        assert!(decode(&good[..good.len() - 3]).is_err());
        // Unknown kind byte.
        let mut bad = good.clone();
        let kind_at = bad.len() - EVENT_WIRE_BYTES + 16;
        bad[kind_at] = 200;
        assert_eq!(
            decode(&bad),
            Err(SimError::Inconsistent {
                what: "trace event kind"
            })
        );
    }

    #[test]
    fn intern_is_bounded_and_keeps_existing_ids_on_overflow() {
        // A private table, so the cap path is deterministic regardless of
        // what other tests intern into the process-global one.
        let mut table = SiteTable {
            by_id: Vec::new(),
            index: HashMap::new(),
        };
        let a = table.intern("soak/a", 2).expect("room");
        let b = table.intern("soak/b", 2).expect("room");
        assert_ne!(a, b);
        // Full: new labels are refused, the table does not grow…
        assert_eq!(table.intern("soak/c", 2), None);
        assert_eq!(table.by_id.len(), 2);
        // …and refusals never disturb ids already handed out.
        assert_eq!(table.intern("soak/a", 2), Some(a));
        assert_eq!(table.intern("soak/b", 2), Some(b));
        assert_eq!(table.by_id[a as usize - 1], "soak/a");
        // The public wrapper tallies refusals (exercised indirectly: the
        // global table is nowhere near INTERN_CAP in tests, so overflow
        // stays where it was).
        let before = intern_overflow();
        let id = intern("trace-test/bounded-global");
        assert_ne!(id, 0);
        assert_eq!(intern_overflow(), before);
    }

    #[test]
    fn follow_cursor_tails_without_draining() {
        let _g = override_guard();
        force(Some(true));
        reset();
        // Pin the watermark past whatever seq other tests consumed.
        record(TraceKind::PacketSend, 0, 0, u64::MAX, 0, 0);
        let start = follow(0).cursor;
        record(TraceKind::PacketSend, 10, 0, 1, 0, 0);
        record(TraceKind::PacketSend, 20, 0, 2, 0, 0);
        let first = follow(start);
        assert_eq!(first.events.len(), 2);
        assert_eq!(first.dropped, 0);
        // Nothing new: same cursor comes back, no events.
        let idle = follow(first.cursor);
        assert!(idle.events.is_empty());
        assert_eq!(idle.cursor, first.cursor);
        record(TraceKind::PacketDeliver, 30, 0, 3, 0, 0);
        let next = follow(first.cursor);
        assert_eq!(next.events.len(), 1);
        assert_eq!(next.events[0].kind, TraceKind::PacketDeliver);
        // The ring still holds everything — follow never drains.
        assert_eq!(take().len(), 4);
        reset();
        force(None);
    }

    #[test]
    fn follow_reports_overwritten_tail_as_dropped() {
        let _g = override_guard();
        force(Some(true));
        reset();
        let cap = capacity() as u64;
        // The global seq stamp is shared with every other test in this
        // binary; a probe event pins the watermark to "right here".
        record(TraceKind::PacketSend, 0, 0, u64::MAX, 0, 0);
        let start = follow(0).cursor;
        for i in 0..cap + 7 {
            record(TraceKind::PacketSend, i + 1, 0, i, 0, 0);
        }
        // probe + cap + 7 events through a cap-slot ring: the probe and
        // the 7 oldest are gone; exactly 7 of them postdate the cursor.
        let chunk = follow(start);
        reset();
        force(None);
        assert_eq!(chunk.events.len(), cap as usize);
        assert_eq!(chunk.dropped, 7, "overwritten events must be accounted");
    }

    #[test]
    fn epoch_reset_rewinds_wall_clock() {
        // Guarded: wall_ns feeds other tests' span timestamps, and this
        // test deliberately rewinds it.
        let _g = override_guard();
        // Regression for the never-exiting-service composition: wall_ns
        // used to measure from an immortal OnceLock epoch, so a service
        // could never start a fresh recording era.
        let _w0 = wall_ns();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let before = wall_ns();
        assert!(before >= 15_000_000, "20 ms must have elapsed");
        reset_epoch();
        let after = wall_ns();
        assert!(
            after < before,
            "wall_ns must restart from the new epoch ({after} >= {before})"
        );
        // And it keeps advancing monotonically from there.
        assert!(wall_ns() >= after);
    }

    #[test]
    fn span_records_enter_and_exit() {
        let _g = override_guard();
        force(Some(true));
        reset();
        {
            let _s = crate::span!("trace-test/span", 1234);
        }
        let events = take();
        reset();
        force(None);
        let enter = events
            .iter()
            .find(|e| e.kind == TraceKind::SpanEnter)
            .expect("enter recorded");
        let exit = events
            .iter()
            .find(|e| e.kind == TraceKind::SpanExit)
            .expect("exit recorded");
        assert_eq!(site_name(enter.site), "trace-test/span");
        assert_eq!(enter.a, 1234);
        assert_eq!(exit.site, enter.site);
        assert!(exit.time_ns >= enter.time_ns);
    }
}
