//! # visionsim-bench
//!
//! Benchmark harness. Every table and figure in the paper's evaluation has
//! a bench target that (a) regenerates the artifact and prints it, and
//! (b) measures the cost of the regeneration:
//!
//! | bench target | paper artifact |
//! |---|---|
//! | `table1_rtt` | Table 1 |
//! | `figure4_throughput` | Figure 4 |
//! | `figure5_visibility` | Figure 5 |
//! | `figure6_scalability` | Figure 6 |
//! | `section43_delivery` | §4.3 inline experiments (mesh streaming, display latency, keypoints, rate cliff) |
//! | `protocol_classify` | §4.1 protocol findings |
//! | `codecs` | micro-benchmarks of every in-tree codec |
//! | `ablations` | DESIGN.md's design-choice ablations |
//! | `harness` | sequential vs parallel Figure 6 (the `core::par` speedup) |
//!
//! Run with `cargo bench --workspace`.
//!
//! The measurement harness itself lives in this crate (the package registry
//! is offline, so no criterion): a Criterion-shaped API — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`Throughput`], [`BenchmarkId`],
//! [`criterion_group!`]/[`criterion_main!`] — over a simple
//! calibrate-then-sample loop. Each benchmark is calibrated so one sample
//! takes ≥10 ms of wall-clock, then `sample_size` samples are timed and the
//! per-iteration min / mean / max are reported (min is the headline number:
//! it is the least noise-contaminated statistic on a shared machine).

use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use visionsim_core::SimError;
use visionsim_experiments::harness::write_atomic;

/// One measured benchmark, in the shape `BENCH.json` records.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Full benchmark name, `group/function[/param]`.
    pub name: String,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Mean over samples, ns per iteration.
    pub mean_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// Units processed per second at the min (headline) time, with the
    /// unit name — `("bytes", x)` or `("elements", x)` — when the group
    /// declared a throughput.
    pub throughput: Option<(&'static str, f64)>,
}

/// Records accumulated by every `bench_function` call in this process,
/// flushed to `BENCH.json` by [`criterion_main!`] via [`flush_json`].
static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Where the machine-readable results land: `$VISIONSIM_BENCH_JSON`, or
/// `BENCH.json` at the workspace root.
pub fn bench_json_path() -> std::path::PathBuf {
    match std::env::var_os("VISIONSIM_BENCH_JSON") {
        Some(p) => std::path::PathBuf::from(p),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH.json"),
    }
}

fn record_line(r: &BenchRecord) -> String {
    let tp = match r.throughput {
        Some((unit, per_sec)) => {
            format!(", \"unit\": \"{unit}\", \"per_sec\": {per_sec:.1}")
        }
        None => String::new(),
    };
    format!(
        "  \"{}\": {{\"min_ns\": {:.1}, \"mean_ns\": {:.1}, \"max_ns\": {:.1}{tp}}}",
        r.name, r.min_ns, r.mean_ns, r.max_ns
    )
}

/// The benchmark name a merged `BENCH.json` entry line carries, if any.
fn line_name(line: &str) -> Option<&str> {
    let rest = line.trim_start().strip_prefix('"')?;
    let end = rest.find('"')?;
    // Entry lines map a name to an object; the object braces distinguish
    // them from the file's own delimiters.
    rest[end..].contains(": {").then(|| &rest[..end])
}

/// Merge this process's records into `BENCH.json`: entries measured in this
/// run replace same-named ones from earlier runs (each bench target is a
/// separate process, so `cargo bench` accumulates across targets), all
/// others are kept. One entry per line, sorted by name, so diffs against a
/// committed baseline stay readable.
///
/// Errors (a `VISIONSIM_BENCH_JSON` pointing into a nonexistent directory,
/// an unwritable target) come back as [`SimError::Io`]; the file on disk is
/// either the previous contents or the full merged result, never a partial
/// write (the merge goes through the harness's atomic temp-then-rename
/// helper).
pub fn try_flush_json() -> Result<(), SimError> {
    let fresh = std::mem::take(&mut *RECORDS.lock().unwrap_or_else(|e| e.into_inner()));
    if fresh.is_empty() {
        return Ok(());
    }
    merge_into(&bench_json_path(), &fresh)
}

/// [`try_flush_json`] with an explicit target path (testable without env).
fn merge_into(path: &Path, fresh: &[BenchRecord]) -> Result<(), SimError> {
    // `write_atomic` creates missing parent directories as a convenience
    // for artifacts; for bench results a missing directory means
    // `VISIONSIM_BENCH_JSON` is misconfigured, so refuse instead of
    // silently materializing the typo'd path.
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    if !dir.is_dir() {
        return Err(SimError::Io {
            what: "bench json dir",
        });
    }
    let mut entries: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            if let Some(name) = line_name(line) {
                entries.insert(name.to_string(), line.trim_end_matches(',').to_string());
            }
        }
    }
    for r in fresh {
        entries.insert(r.name.clone(), record_line(r));
    }
    let mut out = String::from("{\n");
    let last = entries.len().saturating_sub(1);
    for (i, line) in entries.values().enumerate() {
        out.push_str(line);
        out.push_str(if i == last { "\n" } else { ",\n" });
    }
    out.push_str("}\n");
    write_atomic(path, out.as_bytes()).map_err(|_| SimError::Io {
        what: "bench json write",
    })
}

/// [`try_flush_json`], downgrading failure to a stderr warning — bench
/// results are a byproduct; a bad results path must not fail the run.
pub fn flush_json() {
    if let Err(e) = try_flush_json() {
        eprintln!(
            "warning: could not write {}: {e}",
            bench_json_path().display()
        );
    }
}

/// Throughput annotation: scales the report to bytes/s or elements/s.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
}

/// A benchmark identifier with a parameter, e.g. `session_5s/2`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("session_5s", 2)` → `session_5s/2`.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` for the configured number of iterations. Return values are
    /// dropped after the loop, so construction cost is measured but drop
    /// cost largely is not — adequate for the comparative numbers here.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

/// Target wall-clock for one calibrated sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate per-iteration throughput for the report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibrate: grow the iteration count until one sample is ≥10 ms.
        let mut iters = 1u64;
        let per_iter = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= SAMPLE_TARGET || iters >= 1 << 20 {
                break b.elapsed.as_secs_f64() / iters as f64;
            }
            // Jump straight to the projected count rather than doubling
            // blindly, with a 2x floor to converge fast from tiny timings.
            let projected = (SAMPLE_TARGET.as_secs_f64() / b.elapsed.as_secs_f64().max(1e-9)
                * iters as f64) as u64;
            iters = projected.max(iters * 2).min(1 << 20);
        };
        let iters = ((SAMPLE_TARGET.as_secs_f64() / per_iter.max(1e-12)) as u64).max(1);

        // `VISIONSIM_BENCH_SAMPLES` caps the sample count (CI smoke runs
        // want the harness exercised, not a statistically tight number).
        let sample_size = std::env::var("VISIONSIM_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map_or(self.sample_size, |n| n.clamp(1, self.sample_size));
        let mut samples = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters.max(1) as f64);
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => format!("  {}/s", human_bytes(n as f64 / min)),
            Some(Throughput::Elements(n)) => {
                format!("  {} elem/s", human_count(n as f64 / min))
            }
            None => String::new(),
        };
        RECORDS.lock().unwrap_or_else(|e| e.into_inner()).push(BenchRecord {
            name: format!("{}/{}", self.name, id),
            min_ns: min * 1e9,
            mean_ns: mean * 1e9,
            max_ns: max * 1e9,
            throughput: match self.throughput {
                Some(Throughput::Bytes(n)) => Some(("bytes", n as f64 / min)),
                Some(Throughput::Elements(n)) => Some(("elements", n as f64 / min)),
                None => None,
            },
        });
        println!(
            "{}/{:<32} time: [{} {} {}]{}  ({} samples × {} iters)",
            self.name,
            id.to_string(),
            human_time(min),
            human_time(mean),
            human_time(max),
            rate,
            sample_size,
            iters,
        );
        self
    }

    /// Criterion-style parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (kept for API parity; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn human_bytes(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} GiB", per_sec / (1u64 << 30) as f64)
    } else if per_sec >= 1e6 {
        format!("{:.2} MiB", per_sec / (1u64 << 20) as f64)
    } else {
        format!("{:.2} KiB", per_sec / 1024.0)
    }
}

fn human_count(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} k", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

/// Collect benchmark functions under one name (API parity with criterion).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running each group, then flushing `BENCH.json`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $($group();)+
            $crate::flush_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("selftest");
        g.sample_size(2);
        g.throughput(Throughput::Bytes(1024));
        let mut ran = 0u64;
        g.bench_function("spin", |b| b.iter(|| ran = ran.wrapping_add(1)));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats_with_parameter() {
        assert_eq!(BenchmarkId::new("session", 5).to_string(), "session/5");
    }

    fn record(name: &str, ns: f64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            min_ns: ns,
            mean_ns: ns,
            max_ns: ns,
            throughput: None,
        }
    }

    #[test]
    fn merge_into_nonexistent_dir_errs_without_partial_file() {
        let dir = std::env::temp_dir().join("visionsim-bench-no-such-dir");
        // The directory must genuinely not exist for the refusal path.
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("BENCH.json");
        let err = merge_into(&path, &[record("g/f", 1.0)]).unwrap_err();
        assert_eq!(format!("{err}"), "io failure: bench json dir");
        assert!(!dir.exists(), "refusal must not materialize the directory");
    }

    #[test]
    fn merge_into_replaces_same_named_entries_and_keeps_others() {
        let dir = std::env::temp_dir().join("visionsim-bench-merge-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH.json");
        let _ = std::fs::remove_file(&path);
        merge_into(&path, &[record("g/old", 1.0), record("g/keep", 2.0)]).expect("first");
        merge_into(&path, &[record("g/old", 9.0)]).expect("second");
        let text = std::fs::read_to_string(&path).expect("merged file");
        assert!(text.contains("\"g/keep\": {\"min_ns\": 2.0"), "{text}");
        assert!(text.contains("\"g/old\": {\"min_ns\": 9.0"), "{text}");
        assert!(text.ends_with("}\n"), "complete JSON object: {text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn human_units_are_sane() {
        assert!(human_time(2e-9).contains("ns"));
        assert!(human_time(2e-6).contains("µs"));
        assert!(human_time(2e-3).contains("ms"));
        assert!(human_time(2.0).contains('s'));
    }
}
