//! # visionsim-bench
//!
//! Criterion benchmark harness. Every table and figure in the paper's
//! evaluation has a bench target that (a) regenerates the artifact and
//! prints it, and (b) measures the cost of the regeneration:
//!
//! | bench target | paper artifact |
//! |---|---|
//! | `table1_rtt` | Table 1 |
//! | `figure4_throughput` | Figure 4 |
//! | `figure5_visibility` | Figure 5 |
//! | `figure6_scalability` | Figure 6 |
//! | `section43_delivery` | §4.3 inline experiments (mesh streaming, display latency, keypoints, rate cliff) |
//! | `protocol_classify` | §4.1 protocol findings |
//! | `codecs` | micro-benchmarks of every in-tree codec |
//! | `ablations` | DESIGN.md's design-choice ablations |
//!
//! Run with `cargo bench --workspace`.
