//! Design-choice ablations (DESIGN.md §3): entropy-coder choice,
//! delta-vs-absolute semantic coding, foveation granularity, server
//! placement, and visibility-aware semantic delivery.

use visionsim_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use visionsim_experiments::ablations;

fn bench(c: &mut Criterion) {
    // Regenerate and print every ablation's headline numbers.
    let coder = ablations::entropy_coder(200_000, 2024);
    eprintln!(
        "\nEntropy coder on {} B of mesh residuals: rANS {} B, LZ+range {} B",
        coder.input_len, coder.rans_len, coder.lzma_len
    );
    let delta = ablations::delta_coding(900, 2024);
    eprintln!(
        "Semantic coding: absolute {:.0} B/frame ({:.2} Mbps) vs delta {:.0} B/frame ({:.2} Mbps) — \
         loss resilience costs {:.1}x bandwidth",
        delta.absolute_bytes,
        delta.absolute_mbps,
        delta.delta_bytes,
        delta.delta_mbps,
        delta.absolute_bytes / delta.delta_bytes
    );
    eprintln!("Foveation granularity sweep (4 personas, gaze dynamics):");
    for p in ablations::foveation_granularity(2_000, 2024) {
        eprintln!(
            "  fovea ±{:>4.1}° → mean {:>7.0} triangles/frame",
            p.fovea_deg, p.mean_triangles
        );
    }
    let placement = ablations::placement();
    eprintln!(
        "Server placement (intercontinental roster): initiator-near worst RTT {:.0} ms, \
         geo-distributed {:.0} ms",
        placement.initiator_worst_rtt_ms, placement.geo_worst_rtt_ms
    );
    let culling = ablations::semantic_culling(5_000, 2024);
    eprintln!(
        "Visibility-aware delivery (§4.4 proposal): {:.0}% of frames actually needed by \
         the receiver → {:.0}% uplink saving available\n",
        culling.delivered_fraction * 100.0,
        culling.saving_percent
    );

    eprintln!(
        "{}",
        visionsim_experiments::extensions::format_fec(
            &visionsim_experiments::extensions::fec_under_loss(300, 2_000, 2024)
        )
    );
    eprintln!(
        "{}",
        visionsim_experiments::extensions::format_beyond_five(
            &visionsim_experiments::extensions::beyond_five_users(8, 2024)
        )
    );

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("entropy_coder_50k", |b| {
        b.iter(|| black_box(ablations::entropy_coder(50_000, 5)))
    });
    g.bench_function("delta_coding_300frames", |b| {
        b.iter(|| black_box(ablations::delta_coding(300, 5)))
    });
    g.bench_function("foveation_sweep_600frames", |b| {
        b.iter(|| black_box(ablations::foveation_granularity(600, 5)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
