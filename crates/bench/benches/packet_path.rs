//! The packet datapath itself: per-hop forwarding, SFU-style fan-out, and
//! tap observation rates.
//!
//! Every experiment artifact funnels through `net::network`'s event loop,
//! so this target benchmarks that loop in isolation — hops/sec down a
//! forwarding chain, fan-out/sec when one delivered payload is re-sent to
//! many subscribers (the SFU pattern), and tap records/sec at an
//! observed node. The committed `BENCH.json` keeps the pre-refactor
//! (`Vec<u8>`-payload) numbers under `*_prerefactor` names and the
//! pre-batching (scalar drain loop) numbers under `*_prebatch`, so both
//! generations of speedup stay visible as diffs.

use visionsim_bench::{criterion_group, criterion_main, Criterion, Throughput};
use visionsim_core::time::SimDuration;
use visionsim_geo::coords::GeoPoint;
use visionsim_net::link::LinkConfig;
use visionsim_net::network::{Network, NodeId};
use visionsim_net::packet::PortPair;

/// A linear forwarding chain of `hops` links; taps on every node when
/// `tapped`.
fn chain(hops: usize, tapped: bool) -> (Network, NodeId, NodeId) {
    let mut net = Network::new(11);
    let nodes: Vec<NodeId> = (0..=hops)
        .map(|i| net.add_node(&format!("n{i}"), "bench", GeoPoint::new(37.0, -122.0 + i as f64)))
        .collect();
    for w in nodes.windows(2) {
        net.add_duplex(w[0], w[1], LinkConfig::core(SimDuration::from_micros(100)));
    }
    if tapped {
        for &n in &nodes {
            net.add_tap(n);
        }
    }
    (net, nodes[0], nodes[hops])
}

const HOPS: usize = 8;
const BATCH: usize = 64;
const PAYLOAD: usize = 1_200;
const SUBSCRIBERS: usize = 16;

fn bench_hops(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_path");
    g.throughput(Throughput::Elements((HOPS * BATCH) as u64));
    let (mut net, src, dst) = chain(HOPS, false);
    // Interned once, shared by every send — the datapath's intended idiom
    // (transport framing emits each frame as one Arc<[u8]>). Admitted as
    // one batch per tick, the steady-state shape the batched drain loop
    // is built around.
    let payload: std::sync::Arc<[u8]> = vec![0xEEu8; PAYLOAD].into();
    g.bench_function("hops", |b| {
        b.iter(|| {
            net.send_batch(
                src,
                dst,
                (0..BATCH).map(|i| (PortPair::new(5_000, 5_001 + i as u16), payload.clone())),
            );
            net.run_until(net.now() + SimDuration::from_millis(10));
            net.drain_delivered(dst).count()
        })
    });
    g.finish();
}

/// Upstream frames relayed per fan-out iteration: the SFU's steady-state
/// inflow between egress flushes — a multi-party session aggregates
/// several publishers' tiles, so a burst of frames is pending at each
/// flush. One frame per iteration would measure mostly fixed per-tick
/// overhead rather than the fan-out datapath.
const UPSTREAM: usize = 16;

fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_path");
    // One element = one packet delivered end-to-end: the upstream relay
    // legs into the server plus every downstream fan-out copy. Both run
    // the identical send → admit → cohort → deliver → drain datapath
    // (the upstream legs on their own tick), so each counted element is
    // one full packet journey.
    g.throughput(Throughput::Elements((UPSTREAM + UPSTREAM * SUBSCRIBERS) as u64));
    // SFU star: a source, a relay server, and N subscribers.
    let mut net = Network::new(12);
    let server = net.add_node("sfu", "bench", GeoPoint::new(39.0, -95.0));
    let source = net.add_node("src", "bench", GeoPoint::new(37.0, -122.0));
    net.add_duplex(source, server, LinkConfig::core(SimDuration::from_micros(200)));
    let subs: Vec<NodeId> = (0..SUBSCRIBERS)
        .map(|i| {
            let n = net.add_node(&format!("sub{i}"), "bench", GeoPoint::new(40.0, -80.0 - i as f64));
            net.add_duplex(server, n, LinkConfig::core(SimDuration::from_micros(200)));
            n
        })
        .collect();
    let frame: std::sync::Arc<[u8]> = vec![0xABu8; PAYLOAD].into();
    // Reusable relay buffer: the drain iterator borrows the network, so
    // deliveries park here (capacity reused) while they are re-sent.
    let mut relay: Vec<visionsim_net::network::Delivered> = Vec::new();
    g.bench_function("fanout", |b| {
        b.iter(|| {
            net.send_batch(
                source,
                server,
                (0..UPSTREAM).map(|k| (PortPair::new(5_000, 443 + k as u16), frame.clone())),
            );
            net.run_until(net.now() + SimDuration::from_millis(1));
            // Relay the delivered burst to every subscriber, one egress
            // batch per subscriber socket — the SFU downlink fan-out
            // sharing each encoded buffer.
            relay.clear();
            relay.extend(net.drain_delivered(server));
            for &s in &subs {
                net.send_batch(
                    server,
                    s,
                    relay.iter().map(|d| (d.packet.ports, d.packet.payload.clone())),
                );
            }
            net.run_until(net.now() + SimDuration::from_millis(1));
            let mut got = 0usize;
            for &s in &subs {
                got += net.drain_delivered(s).count();
            }
            got
        })
    });
    g.finish();
}

fn bench_taps(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_path");
    // Each packet is observed once per node on its path: egress at the
    // source plus one record per hop exit.
    g.throughput(Throughput::Elements(((HOPS + 1) * BATCH) as u64));
    let (mut net, src, dst) = chain(HOPS, true);
    let payload: std::sync::Arc<[u8]> = vec![0x7Au8; PAYLOAD].into();
    g.bench_function("tap_records", |b| {
        b.iter(|| {
            for i in 0..BATCH {
                net.send(src, dst, PortPair::new(5_000, 5_001 + i as u16), payload.clone());
            }
            net.run_until(net.now() + SimDuration::from_millis(10));
            net.drain_delivered(dst).count();
            // Drain records so tap storage stays bounded across samples.
            let mut records = 0usize;
            for t in 0..=HOPS {
                records += net.take_tap_records(visionsim_net::tap::TapId(t)).len();
            }
            records
        })
    });
    g.finish();
}

criterion_group!(packet_path, bench_hops, bench_fanout, bench_taps);
criterion_main!(packet_path);
