//! Figure 6: scalability sweep, 2–5 Vision Pro users, and the per-size
//! session cost.

use visionsim_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use visionsim_core::time::SimDuration;
use visionsim_geo::cities;
use visionsim_vca::session::{SessionConfig, SessionRunner};

fn bench(c: &mut Criterion) {
    let fig = visionsim_experiments::figure6::run(20, 2024);
    eprintln!("\n{fig}");

    let mut g = c.benchmark_group("figure6");
    g.sample_size(10);
    let cities = cities::us_vantages();
    for users in [2usize, 5] {
        g.bench_with_input(
            BenchmarkId::new("session_5s", users),
            &users,
            |b, &users| {
                b.iter(|| {
                    let mut cfg = SessionConfig::facetime_avp(users, &cities, 3);
                    cfg.duration = SimDuration::from_secs(5);
                    black_box(SessionRunner::new(cfg).run())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
