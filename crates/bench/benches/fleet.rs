//! Fleet-scale benchmarks: end-to-end session throughput of the sharded
//! conservative-PDES engine, and the cost of its barrier protocol in
//! isolation.
//!
//! * `fleet/sessions_per_sec` — wall-clock session arrivals processed per
//!   second by a scaled-down (seconds-long) fleet run with the full
//!   workload shape: admission, remote attaches over the backbone,
//!   departures, sampling. This is the number the >25% regression gate in
//!   `ci.sh` watches; the artifact itself reports only simulated-domain
//!   figures.
//! * `fleet/barrier_rounds` — lookahead windows per second on a
//!   nearly-empty workload (one tick per shard per round), isolating the
//!   synchronization overhead: floor computation, two barrier waits, and
//!   envelope routing, with no model work to hide behind.

use visionsim_bench::{criterion_group, criterion_main, Criterion, Throughput};
use visionsim_core::shard::{ConservativeEngine, Envelope, ShardWorld};
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_vca::fleet::{run_fleet, FleetConfig};

/// The paper-scale workload shape compressed to a benchable duration.
fn bench_config() -> FleetConfig {
    let mut cfg = FleetConfig::paper_scale(4242);
    cfg.duration = SimDuration::from_secs(8);
    cfg.base_arrival_hz = 120.0;
    cfg
}

fn bench_sessions(c: &mut Criterion) {
    let cfg = bench_config();
    // The run is deterministic, so one untimed pass tells us exactly how
    // many session arrivals every timed iteration will process.
    let arrivals: u64 = run_fleet(&cfg, 8).sites.iter().map(|s| s.arrivals).sum();
    let mut g = c.benchmark_group("fleet");
    g.throughput(Throughput::Elements(arrivals));
    g.bench_function("sessions_per_sec", |b| {
        b.iter(|| run_fleet(&cfg, 8).sites.len())
    });
}

/// A shard that does nothing but tick once per lookahead window: every
/// round has exactly one event per shard and zero cross-shard messages,
/// so the measured time is the barrier protocol itself.
struct TickWorld {
    t: SimTime,
    step: SimDuration,
    ticks: u64,
}

impl ShardWorld for TickWorld {
    type Msg = ();

    fn next_event(&self) -> Option<SimTime> {
        Some(self.t)
    }

    fn deliver(&mut self, _env: Envelope<()>) {}

    fn advance(&mut self, horizon: SimTime, _out: &mut Vec<Envelope<()>>) {
        while self.t <= horizon {
            self.t = self.t.saturating_add(self.step);
            self.ticks += 1;
        }
    }
}

const TICK_SHARDS: usize = 8;

fn tick_engine() -> ConservativeEngine<TickWorld> {
    let step = SimDuration::from_millis(1);
    let worlds: Vec<TickWorld> = (0..TICK_SHARDS)
        .map(|_| TickWorld {
            t: SimTime::ZERO,
            step,
            ticks: 0,
        })
        .collect();
    ConservativeEngine::new(worlds, (0..TICK_SHARDS).collect(), step)
}

fn bench_barrier(c: &mut Criterion) {
    let end = SimTime::from_secs(1);
    let rounds = tick_engine().run_until(end).rounds;
    let mut g = c.benchmark_group("fleet");
    g.throughput(Throughput::Elements(rounds));
    g.bench_function("barrier_rounds", |b| {
        b.iter(|| tick_engine().run_until(end).rounds)
    });
}

criterion_group!(benches, bench_sessions, bench_barrier);
criterion_main!(benches);
