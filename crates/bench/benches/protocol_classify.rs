//! §4.1 protocol findings, plus the passive classifier's throughput (the
//! per-packet cost of the Wireshark-style analysis).

use visionsim_bench::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use visionsim_transport::classify::classify;
use visionsim_transport::quic::QuicStreamSender;
use visionsim_transport::rtp::{PayloadType, RtpStream};

fn bench(c: &mut Criterion) {
    let protocols = visionsim_experiments::protocols::run(8, 2024);
    eprintln!("\n{protocols}");

    // Classifier micro-benchmarks.
    let mut rtp = RtpStream::video(PayloadType::H264Video, 1);
    let rtp_pkt = rtp.packetize(0.0, vec![0u8; 1_000], true).to_bytes();
    let mut quic = QuicStreamSender::new(*b"BENCH001", 0, [1u8; 32]);
    let quic_pkt = quic.send(vec![0u8; 1_000]);

    let mut g = c.benchmark_group("classify");
    g.throughput(Throughput::Elements(1));
    g.bench_function("rtp_packet", |b| {
        b.iter(|| black_box(classify(&rtp_pkt[..16])))
    });
    g.bench_function("quic_packet", |b| {
        b.iter(|| black_box(classify(&quic_pkt[..16])))
    });
    g.finish();

    let mut g = c.benchmark_group("protocols");
    g.sample_size(10);
    g.bench_function("full_matrix_3s_sessions", |b| {
        b.iter(|| black_box(visionsim_experiments::protocols::run(3, 5)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
