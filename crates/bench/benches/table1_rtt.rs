//! Table 1: RTT matrix between provider servers and regional test users.
//!
//! Prints the regenerated table once, then benchmarks the probing run.

use visionsim_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Regenerate and print the paper artifact.
    let table = visionsim_experiments::table1::run(10, 2024);
    eprintln!("\n{table}");
    eprintln!("max σ = {:.2} ms (paper: <7 ms)\n", table.max_std());

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("rtt_matrix_5probes", |b| {
        b.iter(|| black_box(visionsim_experiments::table1::run(5, 7)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
