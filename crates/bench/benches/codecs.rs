//! Micro-benchmarks of every in-tree codec: the LZMA-style compressor on
//! keypoint payloads, rANS on mesh residuals, the mesh codec on a persona
//! head, the semantic codec end-to-end, and ChaCha20.

use visionsim_bench::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use visionsim_compress::{compress, decompress, rans};
use visionsim_core::rng::SimRng;
use visionsim_mesh::codec::{decode_mesh, encode_mesh, MeshCodecConfig};
use visionsim_mesh::generate::{head_mesh, PERSONA_TRIANGLES};
use visionsim_semantic::codec::{SemanticCodec, SemanticConfig};
use visionsim_sensor::capture::RgbdCapture;
use visionsim_transport::cipher;

fn bench(c: &mut Criterion) {
    // Realistic payloads.
    let mut cap = RgbdCapture::default_session();
    let mut rng = SimRng::seed_from_u64(1);
    let frame = cap.next_frame(&mut rng).persona_subset();
    let kp_bytes = frame.to_bytes();
    let kp_compressed = compress(&kp_bytes);

    let mut g = c.benchmark_group("lzma_like");
    g.throughput(Throughput::Bytes(kp_bytes.len() as u64));
    g.bench_function("compress_keypoint_frame", |b| {
        b.iter(|| black_box(compress(&kp_bytes)))
    });
    g.bench_function("decompress_keypoint_frame", |b| {
        b.iter(|| black_box(decompress(&kp_compressed).unwrap()))
    });
    g.finish();

    let residuals: Vec<u8> = (0..100_000u32)
        .map(|i| match i % 7 {
            0..=3 => 0u8,
            4 | 5 => 1,
            _ => 2,
        })
        .collect();
    let rans_encoded = rans::encode(&residuals);
    let mut g = c.benchmark_group("rans");
    g.throughput(Throughput::Bytes(residuals.len() as u64));
    g.bench_function("encode_100k_residuals", |b| {
        b.iter(|| black_box(rans::encode(&residuals)))
    });
    g.bench_function("decode_100k_residuals", |b| {
        b.iter(|| black_box(rans::decode(&rans_encoded).unwrap()))
    });
    g.finish();

    let head = head_mesh(PERSONA_TRIANGLES, 1);
    let cfg = MeshCodecConfig::default();
    let head_encoded = encode_mesh(&head, &cfg);
    let mut g = c.benchmark_group("mesh_codec");
    g.sample_size(20);
    g.throughput(Throughput::Elements(PERSONA_TRIANGLES as u64));
    g.bench_function("encode_persona_head", |b| {
        b.iter(|| black_box(encode_mesh(&head, &cfg)))
    });
    g.bench_function("decode_persona_head", |b| {
        b.iter(|| black_box(decode_mesh(&head_encoded).unwrap()))
    });
    g.finish();

    let mut g = c.benchmark_group("semantic");
    g.throughput(Throughput::Elements(1));
    let mut enc = SemanticCodec::new(SemanticConfig::default());
    g.bench_function("encode_frame", |b| b.iter(|| black_box(enc.encode(&frame))));
    let payload = SemanticCodec::new(SemanticConfig::default()).encode(&frame);
    let mut dec = SemanticCodec::new(SemanticConfig::default());
    g.bench_function("decode_frame", |b| {
        b.iter(|| black_box(dec.decode(&payload).unwrap()))
    });
    g.finish();

    let key = [7u8; 32];
    let nonce = cipher::packet_nonce(1, 1);
    let block = vec![0u8; 1_200];
    let mut g = c.benchmark_group("chacha20");
    g.throughput(Throughput::Bytes(block.len() as u64));
    g.bench_function("seal_mtu_payload", |b| {
        b.iter(|| black_box(cipher::seal(&key, &nonce, &block)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
