//! The `core::par` harness itself: the Figure 6 sweep pinned to one worker
//! vs fanned across all cores. The parallel run must produce bit-identical
//! output — the bench asserts it before timing anything.

use std::hint::black_box;
use visionsim_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use visionsim_core::par;

fn bench(c: &mut Criterion) {
    let seq = {
        par::set_threads(Some(1));
        format!("{}", visionsim_experiments::figure6::run(10, 2024))
    };
    let parl = {
        // A forced 4-worker pool exercises real threads even on a
        // single-core runner, where `None` would resolve to inline.
        par::set_threads(Some(4));
        let out = format!("{}", visionsim_experiments::figure6::run(10, 2024));
        par::set_threads(None);
        out
    };
    assert_eq!(seq, parl, "parallel figure6 must match sequential output");
    eprintln!("\nfigure6 output bit-identical at 1 and 4 workers");

    let mut g = c.benchmark_group("harness");
    g.sample_size(10);
    for &workers in &[Some(1usize), None] {
        let label = match workers {
            Some(n) => n.to_string(),
            None => format!("{}", par::threads()),
        };
        g.bench_with_input(
            BenchmarkId::new("figure6_threads", label),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    par::set_threads(workers);
                    let fig = visionsim_experiments::figure6::run(10, 2024);
                    par::set_threads(None);
                    black_box(fig)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
