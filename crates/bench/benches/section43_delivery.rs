//! §4.3 "What is Being Delivered?" — all four inline experiments:
//! mesh-streaming bandwidth floor, display-latency invariance, keypoint
//! stream rate, and the rate-adaptation cliff.

use visionsim_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Regenerate and print all four artifacts.
    let mesh = visionsim_experiments::mesh_streaming::run(4, 2024);
    eprintln!("\n{mesh}");
    let latency = visionsim_experiments::display_latency::run(300, 2024);
    eprintln!("{latency}");
    let kp = visionsim_experiments::keypoint_rate::run(2_000, 2024);
    eprintln!("{kp}");
    let cliff = visionsim_experiments::rate_adaptation::run(12, 2024);
    eprintln!("{cliff}");

    let mut g = c.benchmark_group("section43");
    g.sample_size(10);
    g.bench_function("mesh_streaming_2frames", |b| {
        b.iter(|| black_box(visionsim_experiments::mesh_streaming::run(2, 5)))
    });
    g.bench_function("display_latency_100trials", |b| {
        b.iter(|| black_box(visionsim_experiments::display_latency::run(100, 5)))
    });
    g.bench_function("keypoint_rate_500frames", |b| {
        b.iter(|| black_box(visionsim_experiments::keypoint_rate::run(500, 5)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
