//! Figure 5: rendered triangles and GPU time under the visibility
//! optimizations, plus the visibility pipeline's own evaluation cost.

use visionsim_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use visionsim_mesh::generate::{head_mesh, PERSONA_TRIANGLES};
use visionsim_mesh::geometry::Vec3;
use visionsim_mesh::lod::LodChain;
use visionsim_render::camera::Viewer;
use visionsim_render::visibility::{PersonaInstance, VisibilityFlags, VisibilityPipeline};

fn bench(c: &mut Criterion) {
    let fig = visionsim_experiments::figure5::run(500, 2024);
    eprintln!("\n{fig}");

    let mut g = c.benchmark_group("figure5");
    g.sample_size(20);
    g.bench_function("experiment_200frames", |b| {
        b.iter(|| black_box(visionsim_experiments::figure5::run(200, 7)))
    });

    // The per-frame pipeline evaluation (what runs 90x/s on-device).
    let pipe = VisibilityPipeline::new(VisibilityFlags::vision_pro());
    let viewer = Viewer::looking(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
    let personas: Vec<PersonaInstance> = (0..4)
        .map(|i| PersonaInstance::paper_ladder(Vec3::new(i as f32 * 0.4 - 0.6, 0.0, -1.4)))
        .collect();
    g.bench_function("pipeline_evaluate_4_personas", |b| {
        b.iter(|| black_box(pipe.evaluate(&viewer, &personas)))
    });
    g.finish();

    // Building the persona LOD ladder (session-setup cost).
    let mut g = c.benchmark_group("lod");
    g.sample_size(10);
    let mesh = head_mesh(PERSONA_TRIANGLES, 1);
    g.bench_function("build_persona_lod_chain", |b| {
        b.iter(|| black_box(LodChain::build(&mesh, &[45_036, 21_036, 36])))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
