//! Figure 4: two-party uplink throughput for the five app configurations.
//!
//! Prints the regenerated figure once, then benchmarks one full two-party
//! session per persona type (the unit of work behind each bar).

use visionsim_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use visionsim_core::time::SimDuration;
use visionsim_device::device::DeviceKind;
use visionsim_geo::cities;
use visionsim_geo::sites::Provider;
use visionsim_vca::session::{SessionConfig, SessionRunner};

fn session(provider: Provider, peer: DeviceKind, secs: u64) -> visionsim_vca::session::SessionOutcome {
    let mut cfg = SessionConfig::two_party(
        provider,
        (
            DeviceKind::VisionPro,
            cities::by_name("San Francisco, CA").unwrap(),
        ),
        (peer, cities::by_name("New York, NY").unwrap()),
        99,
    );
    cfg.duration = SimDuration::from_secs(secs);
    SessionRunner::new(cfg).run()
}

fn bench(c: &mut Criterion) {
    let fig = visionsim_experiments::figure4::run(2, 20, 2024);
    eprintln!("\n{fig}");

    let mut g = c.benchmark_group("figure4");
    g.sample_size(10);
    g.bench_function("facetime_spatial_5s_session", |b| {
        b.iter(|| black_box(session(Provider::FaceTime, DeviceKind::VisionPro, 5)))
    });
    g.bench_function("webex_2d_5s_session", |b| {
        b.iter(|| black_box(session(Provider::Webex, DeviceKind::MacBook, 5)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
