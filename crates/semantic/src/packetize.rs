//! Packetization and frame reassembly.
//!
//! Semantic payloads are split into MTU-sized fragments for the wire. The
//! crucial property: a frame is only usable when **every** fragment
//! arrived — "missing certain parts of semantic information can result in
//! failed content reconstruction" (§4.3). [`FrameAssembler`] enforces
//! exactly that, and its completeness accounting is what the application
//! layer uses to declare the persona unavailable under constrained links.

/// Maximum fragment payload (typical 1500-byte Ethernet MTU minus IP/UDP
/// and transport framing headroom).
pub const MTU_PAYLOAD: usize = 1_200;

/// A fragment header + body, as placed inside a transport payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fragment {
    /// Which frame this fragment belongs to.
    pub frame_id: u64,
    /// Fragment index within the frame.
    pub index: u16,
    /// Total fragments in the frame.
    pub total: u16,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Fragment {
    /// Serialized form: frame_id (8) ‖ index (2) ‖ total (2) ‖ body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.body.len());
        out.extend_from_slice(&self.frame_id.to_be_bytes());
        out.extend_from_slice(&self.index.to_be_bytes());
        out.extend_from_slice(&self.total.to_be_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse a serialized fragment.
    pub fn parse(bytes: &[u8]) -> Option<Fragment> {
        if bytes.len() < 12 {
            return None;
        }
        let frame_id = u64::from_be_bytes(bytes[0..8].try_into().ok()?);
        let index = u16::from_be_bytes([bytes[8], bytes[9]]);
        let total = u16::from_be_bytes([bytes[10], bytes[11]]);
        if total == 0 || index >= total {
            return None;
        }
        Some(Fragment {
            frame_id,
            index,
            total,
            body: bytes[12..].to_vec(),
        })
    }
}

/// Splits frame payloads into fragments.
#[derive(Clone, Debug, Default)]
pub struct Packetizer {
    next_frame_id: u64,
}

impl Packetizer {
    /// A packetizer starting at frame id 0.
    pub fn new() -> Self {
        Packetizer::default()
    }

    /// Split one frame payload. Always emits at least one fragment (empty
    /// payloads still mark a frame boundary).
    pub fn split(&mut self, payload: &[u8]) -> Vec<Fragment> {
        let frame_id = self.next_frame_id;
        self.next_frame_id += 1;
        let chunks: Vec<&[u8]> = if payload.is_empty() {
            vec![&[]]
        } else {
            payload.chunks(MTU_PAYLOAD).collect()
        };
        let total = chunks.len() as u16;
        chunks
            .into_iter()
            .enumerate()
            .map(|(i, body)| Fragment {
                frame_id,
                index: i as u16,
                total,
                body: body.to_vec(),
            })
            .collect()
    }
}

/// In-flight frame state: (total fragments, received bodies by index).
type PendingFrame = (u16, Vec<Option<Vec<u8>>>);

/// Default reassembly-buffer memory cap: generous for real traffic (a few
/// spatial frames), small enough that a hostile fragment stream cannot
/// balloon the process.
pub const DEFAULT_MAX_PENDING_BYTES: usize = 8 * 1024 * 1024;

/// Per-frame reassembly state and statistics.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    /// In-flight frames by id.
    pending: std::collections::BTreeMap<u64, PendingFrame>,
    /// Completed frame count.
    complete: u64,
    /// Frames abandoned incomplete (superseded by newer frames). Includes
    /// memory-pressure evictions.
    abandoned: u64,
    /// Frames evicted specifically for memory pressure (subset of
    /// `abandoned`).
    evicted: u64,
    /// How many newer frames may be in flight before older incomplete
    /// frames are abandoned (reconstruction is real-time; stale frames are
    /// worthless).
    horizon: u64,
    /// Body bytes currently buffered across all pending frames.
    pending_bytes: usize,
    /// Hard cap on `pending_bytes`; exceeded → oldest frames evicted.
    max_pending_bytes: usize,
    /// Frame ids below this have already resolved (completed, abandoned,
    /// or evicted) and were dropped from `pending`. Late duplicates of a
    /// resolved frame must not resurrect it as a fresh pending entry — on
    /// a duplicating link that would double-count completions and leak
    /// buffer space.
    resolved_floor: u64,
}

impl FrameAssembler {
    /// An assembler with the default 3-frame staleness horizon and the
    /// default memory cap.
    pub fn new() -> Self {
        FrameAssembler {
            horizon: 3,
            max_pending_bytes: DEFAULT_MAX_PENDING_BYTES,
            ..FrameAssembler::default()
        }
    }

    /// An assembler with an explicit reassembly-buffer cap in bytes.
    pub fn with_memory_cap(max_pending_bytes: usize) -> Self {
        FrameAssembler {
            max_pending_bytes,
            ..FrameAssembler::new()
        }
    }

    /// Feed one fragment; returns the completed frame payload when this
    /// fragment completes its frame.
    pub fn push(&mut self, frag: Fragment) -> Option<(u64, Vec<u8>)> {
        // A fragment for a frame that already resolved (duplicate delivery,
        // or a straggler behind an eviction) must not re-open the frame.
        if frag.frame_id < self.resolved_floor && !self.pending.contains_key(&frag.frame_id) {
            return None;
        }
        let entry = self
            .pending
            .entry(frag.frame_id)
            .or_insert_with(|| (frag.total, vec![None; frag.total as usize]));
        if entry.0 != frag.total || frag.index as usize >= entry.1.len() {
            return None; // inconsistent fragment; ignore
        }
        if entry.1[frag.index as usize].is_some() {
            return None; // duplicate fragment; already buffered
        }
        self.pending_bytes += frag.body.len();
        entry.1[frag.index as usize] = Some(frag.body);
        let done = entry.1.iter().all(|s| s.is_some());
        let result = if done {
            let (_, slots) = self.pending.remove(&frag.frame_id).expect("present");
            let mut payload = Vec::new();
            for s in slots {
                payload.extend_from_slice(&s.expect("checked complete"));
            }
            self.pending_bytes -= payload.len();
            self.complete += 1;
            self.resolved_floor = self.resolved_floor.max(frag.frame_id.saturating_add(1));
            Some((frag.frame_id, payload))
        } else {
            None
        };
        // Abandon frames too far behind the newest seen (the current
        // fragment counts even when its frame just completed and left
        // `pending`).
        let newest = self
            .pending
            .keys()
            .next_back()
            .copied()
            .unwrap_or(0)
            .max(frag.frame_id);
        let stale: Vec<u64> = self
            .pending
            .keys()
            .copied()
            .filter(|&id| id < newest.saturating_sub(self.horizon))
            .collect();
        for id in stale {
            self.drop_pending(id);
            self.abandoned += 1;
        }
        // Memory pressure: evict oldest-first until back under the cap. A
        // single frame larger than the cap evicts itself — it could never
        // finish inside the budget anyway.
        while self.pending_bytes > self.max_pending_bytes {
            let Some(&oldest) = self.pending.keys().next() else {
                break;
            };
            self.drop_pending(oldest);
            self.abandoned += 1;
            self.evicted += 1;
        }
        result
    }

    /// Remove a pending frame, releasing its buffered bytes and raising
    /// the resolved floor so stragglers cannot resurrect it.
    fn drop_pending(&mut self, id: u64) {
        if let Some((_, slots)) = self.pending.remove(&id) {
            let held: usize = slots.iter().flatten().map(Vec::len).sum();
            self.pending_bytes -= held;
            self.resolved_floor = self.resolved_floor.max(id.saturating_add(1));
        }
    }

    /// Frames fully reassembled.
    pub fn completed(&self) -> u64 {
        self.complete
    }

    /// Frames abandoned incomplete — the reconstruction-failure count.
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Frames evicted under memory pressure (already counted in
    /// [`FrameAssembler::abandoned`]).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Body bytes currently held in the reassembly buffer.
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// Completeness ratio over everything that has resolved so far.
    pub fn completeness(&self) -> f64 {
        let resolved = self.complete + self.abandoned;
        if resolved == 0 {
            return 1.0;
        }
        self.complete as f64 / resolved as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_payload_is_one_fragment() {
        let mut p = Packetizer::new();
        let frags = p.split(&[1, 2, 3]);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].total, 1);
    }

    #[test]
    fn large_payload_splits_and_reassembles() {
        let mut p = Packetizer::new();
        let payload: Vec<u8> = (0..3_000u32).map(|i| i as u8).collect();
        let frags = p.split(&payload);
        assert_eq!(frags.len(), 3);
        let mut asm = FrameAssembler::new();
        let mut got = None;
        for f in frags {
            if let Some((id, data)) = asm.push(f) {
                got = Some((id, data));
            }
        }
        let (id, data) = got.expect("frame must complete");
        assert_eq!(id, 0);
        assert_eq!(data, payload);
        assert_eq!(asm.completed(), 1);
    }

    #[test]
    fn out_of_order_fragments_still_complete() {
        let mut p = Packetizer::new();
        let payload = vec![7u8; MTU_PAYLOAD * 2 + 10];
        let mut frags = p.split(&payload);
        frags.reverse();
        let mut asm = FrameAssembler::new();
        let mut done = false;
        for f in frags {
            if let Some((_, data)) = asm.push(f) {
                assert_eq!(data, payload);
                done = true;
            }
        }
        assert!(done);
    }

    #[test]
    fn missing_fragment_blocks_reconstruction() {
        let mut p = Packetizer::new();
        let payload = vec![1u8; MTU_PAYLOAD * 3];
        let mut frags = p.split(&payload);
        frags.remove(1); // lose the middle fragment
        let mut asm = FrameAssembler::new();
        for f in frags {
            assert!(asm.push(f).is_none());
        }
        assert_eq!(asm.completed(), 0);
    }

    #[test]
    fn stale_incomplete_frames_are_abandoned() {
        let mut p = Packetizer::new();
        let mut asm = FrameAssembler::new();
        // Frame 0 loses a fragment; frames 1..6 complete.
        let payload = vec![0u8; MTU_PAYLOAD * 2];
        let mut f0 = p.split(&payload);
        f0.pop();
        for f in f0 {
            asm.push(f);
        }
        for _ in 1..=6 {
            for f in p.split(&[1, 2, 3]) {
                asm.push(f);
            }
        }
        assert_eq!(asm.completed(), 6);
        assert_eq!(asm.abandoned(), 1);
        assert!((asm.completeness() - 6.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn fragment_wire_format_round_trips() {
        let f = Fragment {
            frame_id: 0xDEAD_BEEF_CAFE,
            index: 2,
            total: 5,
            body: vec![9, 9, 9],
        };
        assert_eq!(Fragment::parse(&f.to_bytes()), Some(f));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Fragment::parse(&[0; 11]).is_none()); // too short
        let f = Fragment {
            frame_id: 1,
            index: 5,
            total: 5,
            body: vec![],
        };
        // index == total is invalid on the wire.
        assert!(Fragment::parse(&f.to_bytes()).is_none());
    }

    #[test]
    fn memory_cap_evicts_oldest_first() {
        // Cap fits roughly two incomplete frames' worth of fragments.
        let mut asm = FrameAssembler::with_memory_cap(MTU_PAYLOAD * 2);
        let mut p = Packetizer::new();
        // Three frames, each missing its last fragment, each holding one
        // MTU_PAYLOAD body in the buffer.
        for _ in 0..3 {
            let mut frags = p.split(&vec![3u8; MTU_PAYLOAD + 10]);
            frags.pop();
            for f in frags {
                asm.push(f);
            }
        }
        // Third insert pushed pending over 2*MTU → frame 0 was evicted.
        assert_eq!(asm.evicted(), 1);
        assert_eq!(asm.abandoned(), 1);
        assert!(asm.pending_bytes() <= MTU_PAYLOAD * 2);
    }

    #[test]
    fn hostile_fragment_flood_stays_bounded() {
        let cap = 64 * 1024;
        let mut asm = FrameAssembler::with_memory_cap(cap);
        // A flood of never-completing two-fragment frames with huge ids,
        // out of order, with duplicates.
        for i in 0..10_000u64 {
            let frag = Fragment {
                frame_id: u64::MAX - (i % 97) * 1_000,
                index: 0,
                total: 2,
                body: vec![0xAB; 900],
            };
            asm.push(frag.clone());
            asm.push(frag); // duplicate must not double-count
        }
        assert!(asm.pending_bytes() <= cap);
        assert_eq!(asm.completed(), 0);
    }

    #[test]
    fn duplicate_fragments_cannot_resurrect_a_completed_frame() {
        let mut p = Packetizer::new();
        let mut asm = FrameAssembler::new();
        let frags = p.split(&vec![5u8; MTU_PAYLOAD * 2]);
        for f in frags.clone() {
            asm.push(f);
        }
        assert_eq!(asm.completed(), 1);
        assert_eq!(asm.pending_bytes(), 0);
        // A duplicating link replays every fragment of the finished frame.
        for f in frags {
            assert!(asm.push(f).is_none());
        }
        // Nothing re-opened, nothing double-completed, nothing leaked.
        assert_eq!(asm.completed(), 1);
        assert_eq!(asm.pending_bytes(), 0);
        assert_eq!(asm.abandoned(), 0);
    }

    #[test]
    fn empty_payload_still_marks_a_frame() {
        let mut p = Packetizer::new();
        let frags = p.split(&[]);
        assert_eq!(frags.len(), 1);
        let mut asm = FrameAssembler::new();
        let (_, data) = asm.push(frags[0].clone()).unwrap();
        assert!(data.is_empty());
    }
}
