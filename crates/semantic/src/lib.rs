//! # visionsim-semantic
//!
//! Semantic communication for the spatial persona — the delivery paradigm
//! the paper concludes FaceTime uses (§4.3): instead of streaming 3D
//! content or rendered video, the sender ships only the *meaningful
//! semantics* (the 74 tracked keypoints — 32 eye+mouth + 2 × 21 hands) and
//! the receiver reconstructs the persona mesh locally.
//!
//! * [`codec`] — per-frame keypoint encoding: f32 serialization plus the
//!   LZMA-style compressor, exactly the paper's measurement pipeline.
//!   Frames are coded independently (no inter-frame prediction), which is
//!   what makes the stream loss-brittle and rate-inflexible; a delta mode
//!   exists as an ablation.
//! * [`packetize`] — MTU-splitting and frame reassembly with the
//!   all-or-nothing property: a frame missing any fragment cannot be
//!   reconstructed (the mechanism behind the §4.3 "poor connection" cliff).
//! * [`reconstruct`] — keypoints → persona mesh deformation at the
//!   receiver (the local rendering that makes display latency independent
//!   of network delay).
//! * [`fec`] — an *extension* beyond the measured system: XOR parity per
//!   frame, quantifying what single-loss recovery would cost the semantic
//!   stream.

pub mod codec;
pub mod fec;
pub mod packetize;
pub mod reconstruct;

pub use codec::{CodecMode, SemanticCodec, SemanticConfig};
pub use fec::{FecAssembler, FecEncoder, FecShard};
pub use packetize::{FrameAssembler, Packetizer, MTU_PAYLOAD};
pub use reconstruct::{PersonaRig, ReconstructionError};
