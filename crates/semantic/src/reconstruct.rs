//! Receiver-side persona reconstruction.
//!
//! The receiving headset holds the pre-captured persona mesh (exchanged at
//! session setup, which is why the steady-state stream can be tiny) and
//! deforms it every frame from the incoming keypoints. [`PersonaRig`] binds
//! mesh vertices to nearby keypoints at setup time (Gaussian-falloff skinning
//! weights, at most `MAX_BINDINGS` keypoints per vertex) and then applies
//! per-frame keypoint displacements.
//!
//! Because reconstruction is local, a receiver-side viewport change renders
//! the *current local state* immediately — network delay shifts which frame
//! of motion is shown, not when pixels appear. This is the mechanism behind
//! the §4.3 display-latency experiment.

use visionsim_mesh::geometry::{TriangleMesh, Vec3};
use visionsim_sensor::keypoints::KeypointFrame;

/// Maximum keypoints influencing one vertex.
pub const MAX_BINDINGS: usize = 4;

/// Errors from reconstruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReconstructionError {
    /// The incoming frame's keypoint count does not match the rig.
    SchemaMismatch {
        /// Keypoints the rig was bound with.
        expected: usize,
        /// Keypoints in the offending frame.
        got: usize,
    },
    /// No complete frame has arrived yet.
    NoData,
}

impl std::fmt::Display for ReconstructionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconstructionError::SchemaMismatch { expected, got } => {
                write!(f, "rig bound to {expected} keypoints, frame has {got}")
            }
            ReconstructionError::NoData => write!(f, "no semantic frame received yet"),
        }
    }
}

impl std::error::Error for ReconstructionError {}

/// A persona mesh rigged to a keypoint layout.
#[derive(Clone, Debug)]
pub struct PersonaRig {
    base: TriangleMesh,
    /// Reference keypoint positions the rig was bound at.
    reference: KeypointFrame,
    /// Per-vertex bindings: (keypoint index, weight), weights summing ≤ 1.
    bindings: Vec<Vec<(u32, f32)>>,
    /// The most recent reconstructed state.
    current: TriangleMesh,
    /// Frames applied so far.
    frames_applied: u64,
}

impl PersonaRig {
    /// Bind `base` to `reference` keypoints. `radius` is the Gaussian
    /// falloff scale (metres); vertices further than ~2.5·radius from every
    /// keypoint stay rigid.
    pub fn bind(base: TriangleMesh, reference: KeypointFrame, radius: f32) -> Self {
        assert!(radius > 0.0, "binding radius must be positive");
        assert!(!reference.is_empty(), "cannot bind to zero keypoints");
        let cutoff = 2.5 * radius;
        let inv2r2 = 1.0 / (2.0 * radius * radius);
        let bindings = base
            .positions
            .iter()
            .map(|v| {
                let mut near: Vec<(u32, f32)> = reference
                    .points
                    .iter()
                    .enumerate()
                    .filter_map(|(k, p)| {
                        let d = v.distance(&Vec3::new(p[0], p[1], p[2]));
                        if d < cutoff {
                            Some((k as u32, (-d * d * inv2r2).exp()))
                        } else {
                            None
                        }
                    })
                    .collect();
                near.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
                near.truncate(MAX_BINDINGS);
                let total: f32 = near.iter().map(|(_, w)| w).sum();
                if total > 1.0 {
                    for (_, w) in &mut near {
                        *w /= total;
                    }
                }
                near
            })
            .collect();
        let current = base.clone();
        PersonaRig {
            base,
            reference,
            bindings,
            current,
            frames_applied: 0,
        }
    }

    /// Apply one keypoint frame, updating the reconstructed mesh.
    pub fn apply(&mut self, frame: &KeypointFrame) -> Result<(), ReconstructionError> {
        if frame.len() != self.reference.len() {
            return Err(ReconstructionError::SchemaMismatch {
                expected: self.reference.len(),
                got: frame.len(),
            });
        }
        let deltas: Vec<Vec3> = frame
            .points
            .iter()
            .zip(&self.reference.points)
            .map(|(a, b)| Vec3::new(a[0] - b[0], a[1] - b[1], a[2] - b[2]))
            .collect();
        for (i, v) in self.base.positions.iter().enumerate() {
            let mut out = *v;
            for &(k, w) in &self.bindings[i] {
                out = out + deltas[k as usize] * w;
            }
            self.current.positions[i] = out;
        }
        self.frames_applied += 1;
        Ok(())
    }

    /// The latest reconstructed mesh; an error before the first frame.
    pub fn current(&self) -> Result<&TriangleMesh, ReconstructionError> {
        if self.frames_applied == 0 {
            Err(ReconstructionError::NoData)
        } else {
            Ok(&self.current)
        }
    }

    /// Frames applied so far.
    pub fn frames_applied(&self) -> u64 {
        self.frames_applied
    }

    /// Fraction of vertices influenced by at least one keypoint — a rig
    /// sanity metric (the persona deforms around eyes/mouth/hands; hair and
    /// ears stay rigid, which is exactly the paper's observation that
    /// changes there "are not visible to remote peers").
    pub fn bound_fraction(&self) -> f64 {
        let bound = self.bindings.iter().filter(|b| !b.is_empty()).count();
        bound as f64 / self.bindings.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_core::rng::SimRng;
    use visionsim_mesh::generate::head_mesh;
    use visionsim_sensor::capture::RgbdCapture;

    fn rig() -> (PersonaRig, Vec<KeypointFrame>) {
        let mesh = head_mesh(5_000, 1);
        let mut cap = RgbdCapture::default_session();
        let mut rng = SimRng::seed_from_u64(1);
        let frames: Vec<KeypointFrame> = cap
            .capture_trace(30, &mut rng)
            .iter()
            .map(|f| f.persona_subset())
            .collect();
        let rig = PersonaRig::bind(mesh, frames[0].clone(), 0.02);
        (rig, frames)
    }

    #[test]
    fn binding_covers_face_but_not_everything() {
        let (rig, _) = rig();
        let f = rig.bound_fraction();
        assert!(f > 0.02, "almost nothing bound: {f}");
        assert!(f < 0.9, "whole head bound — falloff too wide: {f}");
    }

    #[test]
    fn no_data_before_first_frame() {
        let (rig, _) = rig();
        assert_eq!(rig.current().unwrap_err(), ReconstructionError::NoData);
    }

    #[test]
    fn reference_frame_reconstructs_the_base() {
        let (mut rig, frames) = rig();
        let base = rig.base.clone();
        rig.apply(&frames[0]).unwrap();
        let m = rig.current().unwrap();
        for (a, b) in m.positions.iter().zip(&base.positions) {
            assert!(a.distance(b) < 1e-6);
        }
    }

    #[test]
    fn motion_moves_bound_vertices_only() {
        let (mut rig, frames) = rig();
        rig.apply(&frames[0]).unwrap();
        let at_ref = rig.current().unwrap().clone();
        rig.apply(frames.last().unwrap()).unwrap();
        let moved = rig.current().unwrap();
        let mut any_moved = false;
        let mut any_rigid = false;
        for (i, (a, b)) in at_ref.positions.iter().zip(&moved.positions).enumerate() {
            let d = a.distance(b);
            if rig.bindings[i].is_empty() {
                assert!(d < 1e-6, "unbound vertex {i} moved {d}");
                any_rigid = true;
            } else if d > 1e-5 {
                any_moved = true;
            }
        }
        assert!(any_moved && any_rigid);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let (mut rig, _) = rig();
        let bad = KeypointFrame::zeros(10);
        assert!(matches!(
            rig.apply(&bad),
            Err(ReconstructionError::SchemaMismatch {
                expected: 74,
                got: 10
            })
        ));
    }

    #[test]
    fn deformation_is_bounded_by_keypoint_motion() {
        let (mut rig, frames) = rig();
        rig.apply(&frames[0]).unwrap();
        let before = rig.current().unwrap().clone();
        let target = &frames[15];
        rig.apply(target).unwrap();
        let after = rig.current().unwrap();
        let kp_motion = frames[0].max_displacement(target).unwrap();
        for (a, b) in before.positions.iter().zip(&after.positions) {
            // Convex weights ⇒ vertex motion ≤ max keypoint motion (∞-norm
            // per axis, with slack for multiple axes combining).
            assert!(a.distance(b) <= kp_motion * 2.0 + 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn rejects_bad_radius() {
        let mesh = head_mesh(1_000, 1);
        PersonaRig::bind(mesh, KeypointFrame::zeros(5), 0.0);
    }
}
