//! Forward error correction for semantic frames — an *extension*, not a
//! reproduction: the measured system has no loss protection, which is why
//! its persona dies at the bandwidth cliff (§4.3). This module implements
//! the obvious fix — one XOR parity shard per frame — so the ablation
//! suite can quantify what it would cost (+1/k bandwidth) and buy
//! (single-loss recovery per frame).
//!
//! Shard layout: `frame_id (8) ‖ index (2) ‖ data_shards (2) ‖
//! payload_len (4) ‖ body`. Indices `0..data_shards` are data; index
//! `data_shards` is the parity shard. All shards of a frame carry equal
//! body sizes (data bodies are zero-padded to the longest chunk).

/// One FEC shard on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FecShard {
    /// Frame this shard belongs to.
    pub frame_id: u64,
    /// Shard index; `data_shards` = parity.
    pub index: u16,
    /// Number of data shards in the frame.
    pub data_shards: u16,
    /// True payload length of the whole frame.
    pub payload_len: u32,
    /// Shard body (padded).
    pub body: Vec<u8>,
}

impl FecShard {
    /// True if this is the parity shard.
    pub fn is_parity(&self) -> bool {
        self.index == self.data_shards
    }

    /// Serialize.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.body.len());
        out.extend_from_slice(&self.frame_id.to_be_bytes());
        out.extend_from_slice(&self.index.to_be_bytes());
        out.extend_from_slice(&self.data_shards.to_be_bytes());
        out.extend_from_slice(&self.payload_len.to_be_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse.
    pub fn parse(bytes: &[u8]) -> Option<FecShard> {
        if bytes.len() < 16 {
            return None;
        }
        let frame_id = u64::from_be_bytes(bytes[0..8].try_into().ok()?);
        let index = u16::from_be_bytes([bytes[8], bytes[9]]);
        let data_shards = u16::from_be_bytes([bytes[10], bytes[11]]);
        let payload_len = u32::from_be_bytes(bytes[12..16].try_into().ok()?);
        if data_shards == 0 || index > data_shards {
            return None;
        }
        Some(FecShard {
            frame_id,
            index,
            data_shards,
            payload_len,
            body: bytes[16..].to_vec(),
        })
    }
}

/// Splits frame payloads into data shards plus one XOR parity shard.
#[derive(Clone, Debug, Default)]
pub struct FecEncoder {
    next_frame_id: u64,
}

impl FecEncoder {
    /// A fresh encoder.
    pub fn new() -> Self {
        FecEncoder::default()
    }

    /// Protect one payload: `mtu` bounds the shard body size.
    pub fn protect(&mut self, payload: &[u8], mtu: usize) -> Vec<FecShard> {
        assert!(mtu > 0, "mtu must be positive");
        let frame_id = self.next_frame_id;
        self.next_frame_id += 1;
        let chunks: Vec<&[u8]> = if payload.is_empty() {
            vec![&[]]
        } else {
            payload.chunks(mtu).collect()
        };
        let data_shards = chunks.len() as u16;
        let body_len = chunks.iter().map(|c| c.len()).max().unwrap_or(0);
        let mut parity = vec![0u8; body_len];
        let mut shards: Vec<FecShard> = chunks
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mut body = c.to_vec();
                body.resize(body_len, 0);
                for (p, b) in parity.iter_mut().zip(&body) {
                    *p ^= b;
                }
                FecShard {
                    frame_id,
                    index: i as u16,
                    data_shards,
                    payload_len: payload.len() as u32,
                    body,
                }
            })
            .collect();
        shards.push(FecShard {
            frame_id,
            index: data_shards,
            data_shards,
            payload_len: payload.len() as u32,
            body: parity,
        });
        shards
    }
}

/// Reassembles frames from shards, recovering one lost shard per frame.
#[derive(Debug, Default)]
pub struct FecAssembler {
    pending: std::collections::BTreeMap<u64, Vec<Option<FecShard>>>,
    recovered: u64,
    complete: u64,
}

impl FecAssembler {
    /// A fresh assembler.
    pub fn new() -> Self {
        FecAssembler::default()
    }

    /// Frames completed so far.
    pub fn completed(&self) -> u64 {
        self.complete
    }

    /// Frames that needed parity recovery.
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Feed one shard; returns the frame payload when decodable.
    pub fn push(&mut self, shard: FecShard) -> Option<(u64, Vec<u8>)> {
        let total = shard.data_shards as usize + 1;
        let frame_id = shard.frame_id;
        let slots = self
            .pending
            .entry(frame_id)
            .or_insert_with(|| vec![None; total]);
        if slots.len() != total || (shard.index as usize) >= total {
            return None;
        }
        let idx = shard.index as usize;
        slots[idx] = Some(shard);
        let present = slots.iter().filter(|s| s.is_some()).count();
        let data_present = slots[..total - 1].iter().filter(|s| s.is_some()).count();
        let data_shards = total - 1;
        // Decodable when all data shards are here, or all-but-one plus
        // parity.
        let decodable = data_present == data_shards
            || (data_present == data_shards - 1 && present == data_shards);
        if !decodable {
            return None;
        }
        let slots = self.pending.remove(&frame_id).expect("present");
        let payload_len = slots
            .iter()
            .flatten()
            .next()
            .expect("at least one shard")
            .payload_len as usize;
        let body_len = slots
            .iter()
            .flatten()
            .next()
            .map(|s| s.body.len())
            .unwrap_or(0);
        // Recover the missing data shard via XOR if needed.
        let mut bodies: Vec<Option<Vec<u8>>> = slots
            .iter()
            .take(data_shards)
            .map(|s| s.as_ref().map(|s| s.body.clone()))
            .collect();
        if let Some(missing) = bodies.iter().position(|b| b.is_none()) {
            let mut rec = slots[data_shards]
                .as_ref()
                .expect("parity present when recovering")
                .body
                .clone();
            rec.resize(body_len, 0);
            for (i, b) in bodies.iter().enumerate() {
                if i != missing {
                    if let Some(b) = b {
                        for (r, x) in rec.iter_mut().zip(b) {
                            *r ^= x;
                        }
                    }
                }
            }
            bodies[missing] = Some(rec);
            self.recovered += 1;
        }
        let mut payload = Vec::with_capacity(payload_len);
        for b in bodies.into_iter().flatten() {
            payload.extend_from_slice(&b);
        }
        payload.truncate(payload_len);
        self.complete += 1;
        Some((frame_id, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_round_trip() {
        let mut enc = FecEncoder::new();
        let payload: Vec<u8> = (0..3_000u32).map(|i| i as u8).collect();
        let shards = enc.protect(&payload, 1_200);
        assert_eq!(shards.len(), 4); // 3 data + parity
        let mut asm = FecAssembler::new();
        let mut got = None;
        for s in shards {
            if let Some((_, p)) = asm.push(s) {
                got = Some(p);
            }
        }
        assert_eq!(got.unwrap(), payload);
        assert_eq!(asm.recovered(), 0);
    }

    #[test]
    fn any_single_data_loss_is_recovered() {
        let payload: Vec<u8> = (0..2_500u32).map(|i| (i * 7) as u8).collect();
        for drop in 0..3 {
            let mut enc = FecEncoder::new();
            let mut shards = enc.protect(&payload, 1_000);
            shards.remove(drop);
            let mut asm = FecAssembler::new();
            let mut got = None;
            for s in shards {
                if let Some((_, p)) = asm.push(s) {
                    got = Some(p);
                }
            }
            assert_eq!(got.unwrap(), payload, "drop {drop}");
            assert_eq!(asm.recovered(), 1);
        }
    }

    #[test]
    fn parity_loss_is_harmless() {
        let payload = vec![42u8; 2_000];
        let mut enc = FecEncoder::new();
        let mut shards = enc.protect(&payload, 900);
        shards.pop(); // drop parity
        let mut asm = FecAssembler::new();
        let mut got = None;
        for s in shards {
            if let Some((_, p)) = asm.push(s) {
                got = Some(p);
            }
        }
        assert_eq!(got.unwrap(), payload);
        assert_eq!(asm.recovered(), 0);
    }

    #[test]
    fn double_loss_is_not_recoverable() {
        let payload = vec![7u8; 3_000];
        let mut enc = FecEncoder::new();
        let mut shards = enc.protect(&payload, 1_000);
        shards.remove(0);
        shards.remove(0);
        let mut asm = FecAssembler::new();
        for s in shards {
            assert!(asm.push(s).is_none());
        }
        assert_eq!(asm.completed(), 0);
    }

    #[test]
    fn shard_wire_format_round_trips() {
        let s = FecShard {
            frame_id: 9,
            index: 2,
            data_shards: 3,
            payload_len: 2_500,
            body: vec![1, 2, 3],
        };
        assert_eq!(FecShard::parse(&s.to_bytes()), Some(s));
        assert!(FecShard::parse(&[0u8; 10]).is_none());
    }

    #[test]
    fn parse_rejects_inconsistent_indices() {
        let s = FecShard {
            frame_id: 1,
            index: 5,
            data_shards: 3,
            payload_len: 10,
            body: vec![],
        };
        assert!(FecShard::parse(&s.to_bytes()).is_none());
    }

    #[test]
    fn overhead_is_one_over_k() {
        let payload = vec![0u8; 3_600];
        let mut enc = FecEncoder::new();
        let shards = enc.protect(&payload, 1_200);
        let total: usize = shards.iter().map(|s| s.body.len()).sum();
        // 3 data shards → parity adds exactly 1/3.
        assert_eq!(total, 4 * 1_200);
    }

    #[test]
    fn small_payload_single_shard_plus_parity() {
        let mut enc = FecEncoder::new();
        let shards = enc.protect(b"tiny", 1_200);
        assert_eq!(shards.len(), 2);
        // k = 1 degenerates to a repetition code: either shard alone
        // reconstructs the frame.
        let mut asm = FecAssembler::new();
        let got = asm.push(shards[1].clone());
        assert_eq!(got.unwrap().1, b"tiny");
        assert_eq!(asm.recovered(), 1);
        let mut asm = FecAssembler::new();
        let got = asm.push(shards[0].clone());
        assert_eq!(got.unwrap().1, b"tiny");
        assert_eq!(asm.recovered(), 0);
    }
}
