//! The semantic keypoint codec.
//!
//! The paper's §4.3 measurement pipeline: 74 keypoints per frame,
//! serialized as floats, compressed with LZMA, streamed at 90 FPS →
//! 0.64±0.02 Mbps, matching the observed spatial-persona rate. The
//! defining property is that frames are **independently decodable**: live
//! reconstruction must tolerate any frame being the first one received,
//! and partial semantics are useless (a face with no mouth cannot be
//! rendered plausibly). The price is that there is no rate ladder — the
//! codec's only "knob" is to stop sending, which is exactly the
//! no-rate-adaptation behaviour the paper measures.
//!
//! [`CodecMode::Delta`] is an ablation: inter-frame delta + quantization,
//! far smaller but loss-fragile (a lost frame corrupts everything until
//! the next keyframe) — quantifying why a production system would not
//! choose it for this workload.

use visionsim_compress::{compress, decompress};
use visionsim_core::units::{ByteSize, DataRate};
use visionsim_sensor::keypoints::KeypointFrame;

/// Encoding mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CodecMode {
    /// Every frame self-contained (what the measurements indicate FaceTime
    /// does).
    Absolute,
    /// Quantized inter-frame deltas with a keyframe every `keyframe_every`
    /// frames (ablation).
    Delta {
        /// Keyframe interval in frames.
        keyframe_every: u32,
        /// Quantization step, metres (e.g. 0.0005 = 0.5 mm).
        step_m: f32,
    },
}

/// Codec configuration.
#[derive(Clone, Copy, Debug)]
pub struct SemanticConfig {
    /// Encoding mode.
    pub mode: CodecMode,
    /// Ship per-keypoint tracker confidence alongside coordinates (dlib
    /// and OpenPose both emit one). Off by default: the paper's bandwidth
    /// arithmetic counts coordinates only; enabling it is the
    /// payload-richness ablation.
    pub with_confidence: bool,
    /// Stream frame rate.
    pub fps: f64,
}

impl Default for SemanticConfig {
    fn default() -> Self {
        SemanticConfig {
            mode: CodecMode::Absolute,
            with_confidence: false,
            fps: 90.0,
        }
    }
}

/// Errors from decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SemanticDecodeError {
    /// The compressed payload is corrupt or truncated.
    Corrupt,
    /// A delta frame arrived with no keyframe state to apply it to.
    MissingReference,
    /// Payload structure inconsistent with the configuration.
    Inconsistent,
}

impl std::fmt::Display for SemanticDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SemanticDecodeError::Corrupt => write!(f, "corrupt semantic payload"),
            SemanticDecodeError::MissingReference => {
                write!(f, "delta frame without reference state")
            }
            SemanticDecodeError::Inconsistent => write!(f, "inconsistent semantic payload"),
        }
    }
}

impl std::error::Error for SemanticDecodeError {}

const TAG_ABSOLUTE: u8 = 0;
const TAG_DELTA_KEY: u8 = 1;
const TAG_DELTA: u8 = 2;

/// Stateful encoder/decoder pair for one persona stream.
#[derive(Clone, Debug)]
pub struct SemanticCodec {
    config: SemanticConfig,
    /// Encoder: frames emitted so far (for keyframe cadence).
    frames_encoded: u64,
    /// Encoder reference (quantized) for delta mode.
    enc_ref: Option<Vec<i32>>,
    /// Decoder reference for delta mode.
    dec_ref: Option<Vec<i32>>,
    /// Synthetic per-keypoint confidence source (deterministic counter —
    /// confidences from real trackers hover near 1.0 and dither in the low
    /// bits, which is what makes them cost real bytes).
    conf_phase: u32,
}

impl SemanticCodec {
    /// A codec with the given configuration.
    pub fn new(config: SemanticConfig) -> Self {
        SemanticCodec {
            config,
            frames_encoded: 0,
            enc_ref: None,
            dec_ref: None,
            conf_phase: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SemanticConfig {
        &self.config
    }

    fn quantize(frame: &KeypointFrame, step: f32) -> Vec<i32> {
        frame
            .points
            .iter()
            .flat_map(|p| p.iter().map(move |c| (c / step).round() as i32))
            .collect()
    }

    fn dequantize(q: &[i32], step: f32) -> KeypointFrame {
        let points = q
            .chunks_exact(3)
            .map(|c| [c[0] as f32 * step, c[1] as f32 * step, c[2] as f32 * step])
            .collect();
        KeypointFrame { points }
    }

    /// Encode one frame into a self-describing payload.
    pub fn encode(&mut self, frame: &KeypointFrame) -> Vec<u8> {
        let payload = match self.config.mode {
            CodecMode::Absolute => {
                let mut raw = frame.to_bytes();
                if self.config.with_confidence {
                    for i in 0..frame.len() {
                        // Confidence ≈ 0.9..1.0 with dithered mantissa.
                        self.conf_phase = self.conf_phase.wrapping_mul(1_664_525).wrapping_add(
                            1_013_904_223 + i as u32,
                        );
                        let c = 0.9 + 0.1 * (self.conf_phase >> 8) as f32 / (1u32 << 24) as f32;
                        raw.extend_from_slice(&c.to_le_bytes());
                    }
                }
                let mut out = vec![TAG_ABSOLUTE];
                out.extend_from_slice(&compress(&raw));
                out
            }
            CodecMode::Delta {
                keyframe_every,
                step_m,
            } => {
                let q = Self::quantize(frame, step_m);
                let keyframe = self.frames_encoded.is_multiple_of(keyframe_every as u64)
                    || self.enc_ref.as_ref().map(|r| r.len()) != Some(q.len());
                let mut raw = Vec::new();
                if keyframe {
                    for &v in &q {
                        visionsim_compress::varint::write_i64(&mut raw, v as i64);
                    }
                } else {
                    let r = self.enc_ref.as_ref().expect("non-keyframe has reference");
                    for (a, b) in q.iter().zip(r) {
                        visionsim_compress::varint::write_i64(&mut raw, (*a - *b) as i64);
                    }
                }
                self.enc_ref = Some(q);
                let mut out = vec![if keyframe { TAG_DELTA_KEY } else { TAG_DELTA }];
                out.extend_from_slice(&compress(&raw));
                out
            }
        };
        self.frames_encoded += 1;
        payload
    }

    /// Decode one payload back into a keypoint frame.
    pub fn decode(&mut self, payload: &[u8]) -> Result<KeypointFrame, SemanticDecodeError> {
        let (&tag, body) = payload
            .split_first()
            .ok_or(SemanticDecodeError::Corrupt)?;
        let raw = decompress(body).map_err(|_| SemanticDecodeError::Corrupt)?;
        match tag {
            TAG_ABSOLUTE => {
                let coord_bytes = if self.config.with_confidence {
                    // raw = 12n coords + 4n confidences = 16n bytes.
                    if raw.len() % 16 != 0 {
                        return Err(SemanticDecodeError::Inconsistent);
                    }
                    raw.len() / 16 * 12
                } else {
                    raw.len()
                };
                KeypointFrame::from_bytes(&raw[..coord_bytes])
                    .ok_or(SemanticDecodeError::Inconsistent)
            }
            TAG_DELTA_KEY | TAG_DELTA => {
                let CodecMode::Delta { step_m, .. } = self.config.mode else {
                    return Err(SemanticDecodeError::Inconsistent);
                };
                let mut values = Vec::new();
                let mut pos = 0;
                while pos < raw.len() {
                    let (v, n) = visionsim_compress::varint::read_i64(&raw[pos..])
                        .ok_or(SemanticDecodeError::Corrupt)?;
                    pos += n;
                    values.push(v as i32);
                }
                if values.len() % 3 != 0 {
                    return Err(SemanticDecodeError::Inconsistent);
                }
                let q = if tag == TAG_DELTA_KEY {
                    values
                } else {
                    let r = self
                        .dec_ref
                        .as_ref()
                        .ok_or(SemanticDecodeError::MissingReference)?;
                    if r.len() != values.len() {
                        return Err(SemanticDecodeError::Inconsistent);
                    }
                    r.iter().zip(&values).map(|(a, d)| a + d).collect()
                };
                self.dec_ref = Some(q.clone());
                Ok(Self::dequantize(&q, step_m))
            }
            _ => Err(SemanticDecodeError::Inconsistent),
        }
    }

    /// Inform the decoder that a frame was lost in transit. In delta mode
    /// this invalidates the reference until the next keyframe; in absolute
    /// mode it is harmless (the defining resilience property).
    pub fn on_frame_lost(&mut self) {
        if matches!(self.config.mode, CodecMode::Delta { .. }) {
            self.dec_ref = None;
        }
    }

    /// Steady-state stream rate for the given per-frame payload sizes
    /// (transport overhead excluded).
    pub fn stream_rate(&self, payload_sizes: &[usize]) -> DataRate {
        if payload_sizes.is_empty() {
            return DataRate::ZERO;
        }
        let mean = payload_sizes.iter().sum::<usize>() as f64 / payload_sizes.len() as f64;
        DataRate::from_bps_f64(mean * 8.0 * self.config.fps)
    }

    /// The minimum link rate below which this stream cannot function: the
    /// semantic payload has no quality ladder, so the requirement is simply
    /// the full stream rate (plus nothing — there is nothing to shed).
    pub fn min_required_rate(&self, recent_payload_sizes: &[usize]) -> DataRate {
        self.stream_rate(recent_payload_sizes)
    }

    /// Mean payload size of an iterator of payloads.
    pub fn mean_payload(payloads: &[Vec<u8>]) -> ByteSize {
        if payloads.is_empty() {
            return ByteSize::ZERO;
        }
        ByteSize::from_bytes(
            (payloads.iter().map(|p| p.len()).sum::<usize>() / payloads.len()) as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visionsim_core::rng::SimRng;
    use visionsim_sensor::capture::RgbdCapture;

    fn persona_frames(n: usize, seed: u64) -> Vec<KeypointFrame> {
        let mut cap = RgbdCapture::default_session();
        let mut rng = SimRng::seed_from_u64(seed);
        cap.capture_trace(n, &mut rng)
            .iter()
            .map(|f| f.persona_subset())
            .collect()
    }

    #[test]
    fn absolute_mode_round_trips() {
        let frames = persona_frames(10, 1);
        let mut enc = SemanticCodec::new(SemanticConfig::default());
        let mut dec = SemanticCodec::new(SemanticConfig::default());
        for f in &frames {
            let payload = enc.encode(f);
            let got = dec.decode(&payload).unwrap();
            assert_eq!(&got, f);
        }
    }

    #[test]
    fn absolute_mode_without_confidence_round_trips() {
        let cfg = SemanticConfig {
            with_confidence: false,
            ..SemanticConfig::default()
        };
        let frames = persona_frames(5, 2);
        let mut enc = SemanticCodec::new(cfg);
        let mut dec = SemanticCodec::new(cfg);
        for f in &frames {
            assert_eq!(dec.decode(&enc.encode(f)).unwrap(), *f);
        }
    }

    #[test]
    fn absolute_frames_survive_arbitrary_loss() {
        let frames = persona_frames(20, 3);
        let mut enc = SemanticCodec::new(SemanticConfig::default());
        let mut dec = SemanticCodec::new(SemanticConfig::default());
        let payloads: Vec<_> = frames.iter().map(|f| enc.encode(f)).collect();
        // Deliver only every third frame.
        for (i, p) in payloads.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(dec.decode(p).unwrap(), frames[i]);
            } else {
                dec.on_frame_lost();
            }
        }
    }

    #[test]
    fn delta_mode_round_trips_lossless_channel() {
        let cfg = SemanticConfig {
            mode: CodecMode::Delta {
                keyframe_every: 30,
                step_m: 0.0005,
            },
            with_confidence: false,
            fps: 90.0,
        };
        let frames = persona_frames(60, 4);
        let mut enc = SemanticCodec::new(cfg);
        let mut dec = SemanticCodec::new(cfg);
        for f in &frames {
            let got = dec.decode(&enc.encode(f)).unwrap();
            // Lossy to quantization only.
            assert!(got.max_displacement(f).unwrap() <= 0.0005 * 0.51 + 1e-6);
        }
    }

    #[test]
    fn delta_mode_breaks_after_loss_until_keyframe() {
        let cfg = SemanticConfig {
            mode: CodecMode::Delta {
                keyframe_every: 10,
                step_m: 0.0005,
            },
            with_confidence: false,
            fps: 90.0,
        };
        let frames = persona_frames(10, 5);
        let mut enc = SemanticCodec::new(cfg);
        let mut dec = SemanticCodec::new(cfg);
        let payloads: Vec<_> = frames.iter().map(|f| enc.encode(f)).collect();
        dec.decode(&payloads[0]).unwrap(); // keyframe
        dec.on_frame_lost(); // frame 1 lost
        assert_eq!(
            dec.decode(&payloads[2]).unwrap_err(),
            SemanticDecodeError::MissingReference
        );
    }

    #[test]
    fn delta_mode_is_much_smaller_than_absolute() {
        let frames = persona_frames(90, 6);
        let mut abs = SemanticCodec::new(SemanticConfig {
            with_confidence: false,
            ..SemanticConfig::default()
        });
        let mut delta = SemanticCodec::new(SemanticConfig {
            mode: CodecMode::Delta {
                keyframe_every: 90,
                step_m: 0.0005,
            },
            with_confidence: false,
            fps: 90.0,
        });
        let abs_bytes: usize = frames.iter().map(|f| abs.encode(f).len()).sum();
        let delta_bytes: usize = frames.iter().map(|f| delta.encode(f).len()).sum();
        assert!(
            delta_bytes * 2 < abs_bytes,
            "delta {delta_bytes} !≪ absolute {abs_bytes}"
        );
    }

    #[test]
    fn stream_rate_lands_in_the_measured_band() {
        // §4.3: 74 keypoints, LZMA, 90 FPS → 0.64±0.02 Mbps (payload), vs
        // the 0.67 Mbps persona rate. Our synthetic trace + from-scratch
        // LZMA should land in the same few-hundred-kbps band.
        let frames = persona_frames(300, 7);
        let mut enc = SemanticCodec::new(SemanticConfig::default());
        let sizes: Vec<usize> = frames.iter().map(|f| enc.encode(f).len()).collect();
        let rate = enc.stream_rate(&sizes).as_mbps_f64();
        assert!(
            (0.35..1.0).contains(&rate),
            "semantic stream rate {rate} Mbps outside band"
        );
    }

    #[test]
    fn corrupt_payload_is_an_error() {
        let frames = persona_frames(1, 8);
        let mut enc = SemanticCodec::new(SemanticConfig::default());
        let mut dec = SemanticCodec::new(SemanticConfig::default());
        let mut p = enc.encode(&frames[0]);
        let mid = p.len() / 2;
        p.truncate(mid);
        assert!(dec.decode(&p).is_err());
        assert!(dec.decode(&[]).is_err());
    }

    #[test]
    fn min_required_rate_equals_stream_rate() {
        let enc = SemanticCodec::new(SemanticConfig::default());
        let sizes = vec![900usize; 10];
        assert_eq!(
            enc.min_required_rate(&sizes),
            enc.stream_rate(&sizes)
        );
        // ~900 B at 90 FPS ≈ 0.648 Mbps: the 700 kbps cliff's origin.
        assert!((enc.stream_rate(&sizes).as_mbps_f64() - 0.648).abs() < 0.01);
    }
}
