//! Randomized property tests for the semantic codec and packetization,
//! driven by deterministic SimRng cases.

use visionsim_core::par::derive_seed;
use visionsim_core::rng::SimRng;
use visionsim_semantic::codec::{CodecMode, SemanticCodec, SemanticConfig};
use visionsim_semantic::packetize::{Fragment, FrameAssembler, Packetizer};
use visionsim_sensor::keypoints::KeypointFrame;

const CASES: u64 = 96;

fn case_rng(label: &str, i: u64) -> SimRng {
    SimRng::seed_from_u64(derive_seed(0x5E3A_471C, label, i))
}

fn arb_frame(rng: &mut SimRng, n: usize) -> KeypointFrame {
    KeypointFrame {
        points: (0..n)
            .map(|_| {
                [
                    rng.uniform_range(-2.0, 2.0) as f32,
                    rng.uniform_range(-2.0, 2.0) as f32,
                    rng.uniform_range(-2.0, 2.0) as f32,
                ]
            })
            .collect(),
    }
}

fn bytes(rng: &mut SimRng, min_len: u64, max_len: u64) -> Vec<u8> {
    let n = rng.uniform_u64(min_len, max_len) as usize;
    let mut v = vec![0u8; n];
    rng.fill_bytes(&mut v);
    v
}

/// Absolute mode is bit-exact for any frame.
#[test]
fn absolute_mode_round_trips() {
    for i in 0..CASES {
        let mut rng = case_rng("absolute", i);
        let frame = arb_frame(&mut rng, 74);
        let cfg = SemanticConfig::default();
        let mut enc = SemanticCodec::new(cfg);
        let mut dec = SemanticCodec::new(cfg);
        assert_eq!(dec.decode(&enc.encode(&frame)).expect("own output"), frame);
    }
}

/// Absolute mode with confidence channel still round-trips coordinates.
#[test]
fn confidence_channel_round_trips() {
    for i in 0..CASES {
        let mut rng = case_rng("confidence", i);
        let frame = arb_frame(&mut rng, 32);
        let cfg = SemanticConfig {
            with_confidence: true,
            ..SemanticConfig::default()
        };
        let mut enc = SemanticCodec::new(cfg);
        let mut dec = SemanticCodec::new(cfg);
        assert_eq!(dec.decode(&enc.encode(&frame)).expect("own output"), frame);
    }
}

/// Delta mode is lossy only to quantization, for any frame sequence.
#[test]
fn delta_mode_error_is_bounded() {
    for i in 0..CASES {
        let mut rng = case_rng("delta", i);
        let count = rng.uniform_u64(1, 29) as usize;
        let frames: Vec<KeypointFrame> = (0..count).map(|_| arb_frame(&mut rng, 10)).collect();
        let step = rng.uniform_u64(1, 49) as u32; // 0.1 mm .. 5 mm
        let step_m = step as f32 * 1e-4;
        let cfg = SemanticConfig {
            mode: CodecMode::Delta {
                keyframe_every: 7,
                step_m,
            },
            with_confidence: false,
            fps: 90.0,
        };
        let mut enc = SemanticCodec::new(cfg);
        let mut dec = SemanticCodec::new(cfg);
        for f in &frames {
            let got = dec.decode(&enc.encode(f)).expect("lossless channel");
            let err = got.max_displacement(f).expect("same arity");
            assert!(err <= step_m * 0.51 + 1e-5, "err {err} step {step_m}");
        }
    }
}

/// Decoding arbitrary garbage never panics.
#[test]
fn decode_never_panics() {
    for i in 0..CASES {
        let mut rng = case_rng("garbage", i);
        let garbage = bytes(&mut rng, 0, 300);
        let mut dec = SemanticCodec::new(SemanticConfig::default());
        let _ = dec.decode(&garbage);
        let mut dec = SemanticCodec::new(SemanticConfig {
            mode: CodecMode::Delta {
                keyframe_every: 5,
                step_m: 0.001,
            },
            with_confidence: false,
            fps: 90.0,
        });
        let _ = dec.decode(&garbage);
    }
}

/// Fragmentation reassembles any payload under any delivery order.
#[test]
fn reassembly_under_permutation() {
    for i in 0..CASES {
        let mut rng = case_rng("reassembly", i);
        let payload = bytes(&mut rng, 0, 8_000);
        let mut p = Packetizer::new();
        let mut frags = p.split(&payload);
        rng.shuffle(&mut frags);
        let mut asm = FrameAssembler::new();
        let mut out = None;
        for f in frags {
            if let Some((_, data)) = asm.push(f) {
                out = Some(data);
            }
        }
        assert_eq!(out.expect("complete delivery"), payload);
    }
}

/// Fragment wire format round-trips and its parser never panics.
#[test]
fn fragment_wire_round_trip() {
    for i in 0..CASES {
        let mut rng = case_rng("fragment_wire", i);
        let frame_id = rng.next_u64();
        let total = rng.uniform_u64(1, 99) as u16;
        let body = bytes(&mut rng, 0, 1_500);
        let garbage = bytes(&mut rng, 0, 40);
        let f = Fragment {
            frame_id,
            index: total - 1,
            total,
            body,
        };
        assert_eq!(Fragment::parse(&f.to_bytes()), Some(f));
        let _ = Fragment::parse(&garbage);
    }
}

/// Dropping any single fragment of a multi-fragment frame prevents
/// reconstruction (the all-or-nothing property).
#[test]
fn any_single_loss_blocks_frame() {
    for i in 0..CASES {
        let mut rng = case_rng("single_loss", i);
        let payload = bytes(&mut rng, 2_500, 6_000);
        let mut p = Packetizer::new();
        let mut frags = p.split(&payload);
        assert!(frags.len() >= 2, "payload should span fragments");
        let drop = rng.index(frags.len());
        frags.remove(drop);
        let mut asm = FrameAssembler::new();
        for f in frags {
            assert!(asm.push(f).is_none());
        }
        assert_eq!(asm.completed(), 0);
    }
}
