//! Property-based tests for the semantic codec and packetization.

use proptest::prelude::*;
use visionsim_semantic::codec::{CodecMode, SemanticCodec, SemanticConfig};
use visionsim_semantic::packetize::{Fragment, FrameAssembler, Packetizer};
use visionsim_sensor::keypoints::KeypointFrame;

fn arb_frame(n: usize) -> impl Strategy<Value = KeypointFrame> {
    prop::collection::vec((-2.0f32..2.0, -2.0f32..2.0, -2.0f32..2.0), n..=n).prop_map(|pts| {
        KeypointFrame {
            points: pts.into_iter().map(|(x, y, z)| [x, y, z]).collect(),
        }
    })
}

proptest! {
    /// Absolute mode is bit-exact for any frame.
    #[test]
    fn absolute_mode_round_trips(frame in arb_frame(74)) {
        let cfg = SemanticConfig::default();
        let mut enc = SemanticCodec::new(cfg);
        let mut dec = SemanticCodec::new(cfg);
        prop_assert_eq!(dec.decode(&enc.encode(&frame)).expect("own output"), frame);
    }

    /// Absolute mode with confidence channel still round-trips coordinates.
    #[test]
    fn confidence_channel_round_trips(frame in arb_frame(32)) {
        let cfg = SemanticConfig { with_confidence: true, ..SemanticConfig::default() };
        let mut enc = SemanticCodec::new(cfg);
        let mut dec = SemanticCodec::new(cfg);
        prop_assert_eq!(dec.decode(&enc.encode(&frame)).expect("own output"), frame);
    }

    /// Delta mode is lossy only to quantization, for any frame sequence.
    #[test]
    fn delta_mode_error_is_bounded(
        frames in prop::collection::vec(arb_frame(10), 1..30),
        step in 1u32..50, // 0.1 mm .. 5 mm
    ) {
        let step_m = step as f32 * 1e-4;
        let cfg = SemanticConfig {
            mode: CodecMode::Delta { keyframe_every: 7, step_m },
            with_confidence: false,
            fps: 90.0,
        };
        let mut enc = SemanticCodec::new(cfg);
        let mut dec = SemanticCodec::new(cfg);
        for f in &frames {
            let got = dec.decode(&enc.encode(f)).expect("lossless channel");
            let err = got.max_displacement(f).expect("same arity");
            prop_assert!(err <= step_m * 0.51 + 1e-5, "err {err} step {step_m}");
        }
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn decode_never_panics(garbage in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut dec = SemanticCodec::new(SemanticConfig::default());
        let _ = dec.decode(&garbage);
        let mut dec = SemanticCodec::new(SemanticConfig {
            mode: CodecMode::Delta { keyframe_every: 5, step_m: 0.001 },
            with_confidence: false,
            fps: 90.0,
        });
        let _ = dec.decode(&garbage);
    }

    /// Fragmentation reassembles any payload under any delivery order.
    #[test]
    fn reassembly_under_permutation(
        payload in prop::collection::vec(any::<u8>(), 0..8_000),
        seed in any::<u64>(),
    ) {
        let mut p = Packetizer::new();
        let mut frags = p.split(&payload);
        // Deterministic shuffle from the seed.
        let mut state = seed | 1;
        for i in (1..frags.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            frags.swap(i, j);
        }
        let mut asm = FrameAssembler::new();
        let mut out = None;
        for f in frags {
            if let Some((_, data)) = asm.push(f) {
                out = Some(data);
            }
        }
        prop_assert_eq!(out.expect("complete delivery"), payload);
    }

    /// Fragment wire format round-trips and its parser never panics.
    #[test]
    fn fragment_wire_round_trip(
        frame_id in any::<u64>(),
        total in 1u16..100,
        body in prop::collection::vec(any::<u8>(), 0..1_500),
        garbage in prop::collection::vec(any::<u8>(), 0..40),
    ) {
        let f = Fragment { frame_id, index: total - 1, total, body };
        prop_assert_eq!(Fragment::parse(&f.to_bytes()), Some(f));
        let _ = Fragment::parse(&garbage);
    }

    /// Dropping any single fragment of a multi-fragment frame prevents
    /// reconstruction (the all-or-nothing property).
    #[test]
    fn any_single_loss_blocks_frame(
        payload in prop::collection::vec(any::<u8>(), 2_500..6_000),
        drop_choice in any::<u64>(),
    ) {
        let mut p = Packetizer::new();
        let mut frags = p.split(&payload);
        prop_assume!(frags.len() >= 2);
        let drop = (drop_choice % frags.len() as u64) as usize;
        frags.remove(drop);
        let mut asm = FrameAssembler::new();
        for f in frags {
            prop_assert!(asm.push(f).is_none());
        }
        prop_assert_eq!(asm.completed(), 0);
    }
}
