//! # visionsim-sensor
//!
//! The capture side of the telepresence pipeline: keypoint schemas matching
//! the tools the paper uses (dlib's 68 facial keypoints, OpenPose's 21 hand
//! keypoints, and the 32-point eye+mouth subset that Vision Pro's sensors
//! actually track for the spatial persona), synthetic face/hand motion
//! synthesis (blinks, saccades, speech-driven mouth, hand gestures), and an
//! RGB-D capture substitute standing in for the ZED 2i camera of the §4.3
//! keypoint-bandwidth experiment.

pub mod capture;
pub mod keypoints;
pub mod motion;

pub use capture::RgbdCapture;
pub use keypoints::{KeypointFrame, KeypointSchema, PERSONA_KEYPOINTS};
pub use motion::{FaceMotion, HandMotion, MotionConfig};
