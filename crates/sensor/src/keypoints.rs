//! Keypoint schemas.
//!
//! §4.3 accounting: "the 32 (mouth & eyes) + 2 × 21 (hands) = 74 extracted
//! keypoints". The 32 come from the dlib 68-point facial layout — eyes are
//! points 36–47 (12 points), the mouth 48–67 (20 points). Hands follow
//! OpenPose's 21-point layout (wrist + 4 joints × 5 fingers).

/// A keypoint layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KeypointSchema {
    /// dlib's 68-point face layout.
    Face68,
    /// OpenPose's 21-point hand layout.
    Hand21,
    /// The eye+mouth subset of Face68 that the spatial persona tracks.
    EyeMouth32,
}

impl KeypointSchema {
    /// Number of keypoints in the schema.
    pub fn count(&self) -> usize {
        match self {
            KeypointSchema::Face68 => 68,
            KeypointSchema::Hand21 => 21,
            KeypointSchema::EyeMouth32 => 32,
        }
    }

    /// dlib indices of the eye region (36..=47).
    pub fn eye_indices() -> std::ops::RangeInclusive<usize> {
        36..=47
    }

    /// dlib indices of the mouth region (48..=67).
    pub fn mouth_indices() -> std::ops::RangeInclusive<usize> {
        48..=67
    }

    /// Extract the eye+mouth subset from a Face68 frame.
    pub fn eye_mouth_subset(face: &[[f32; 3]]) -> Vec<[f32; 3]> {
        assert_eq!(face.len(), 68, "expected a Face68 frame");
        Self::eye_indices()
            .chain(Self::mouth_indices())
            .map(|i| face[i])
            .collect()
    }
}

/// Total keypoints the spatial persona ships per frame: 32 (eye+mouth)
/// + 2 × 21 (hands) = 74.
pub const PERSONA_KEYPOINTS: usize = 74;

/// One frame of 3D keypoints (metres, camera frame).
#[derive(Clone, Debug, PartialEq)]
pub struct KeypointFrame {
    /// Points in schema order.
    pub points: Vec<[f32; 3]>,
}

impl KeypointFrame {
    /// A frame of `n` points at the origin.
    pub fn zeros(n: usize) -> Self {
        KeypointFrame {
            points: vec![[0.0; 3]; n],
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the frame has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Concatenate frames (e.g. face subset ‖ left hand ‖ right hand).
    pub fn concat(frames: &[&KeypointFrame]) -> KeypointFrame {
        KeypointFrame {
            points: frames.iter().flat_map(|f| f.points.iter().copied()).collect(),
        }
    }

    /// Serialize as little-endian f32 triples — the raw form the semantic
    /// codec compresses.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.points.len() * 12);
        for p in &self.points {
            for c in p {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }

    /// Parse the serialization of [`KeypointFrame::to_bytes`]; `None` if
    /// the length is not a multiple of 12.
    pub fn from_bytes(bytes: &[u8]) -> Option<KeypointFrame> {
        if !bytes.len().is_multiple_of(12) {
            return None;
        }
        let points = bytes
            .chunks_exact(12)
            .map(|c| {
                [
                    f32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                    f32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                    f32::from_le_bytes([c[8], c[9], c[10], c[11]]),
                ]
            })
            .collect();
        Some(KeypointFrame { points })
    }

    /// Maximum coordinate-wise displacement vs another frame (∞-norm);
    /// `None` when lengths differ.
    pub fn max_displacement(&self, other: &KeypointFrame) -> Option<f32> {
        if self.len() != other.len() {
            return None;
        }
        let mut max = 0.0f32;
        for (a, b) in self.points.iter().zip(&other.points) {
            for c in 0..3 {
                max = max.max((a[c] - b[c]).abs());
            }
        }
        Some(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_counts_match_tools() {
        assert_eq!(KeypointSchema::Face68.count(), 68);
        assert_eq!(KeypointSchema::Hand21.count(), 21);
        assert_eq!(KeypointSchema::EyeMouth32.count(), 32);
    }

    #[test]
    fn persona_accounting_is_74() {
        assert_eq!(
            KeypointSchema::EyeMouth32.count() + 2 * KeypointSchema::Hand21.count(),
            PERSONA_KEYPOINTS
        );
    }

    #[test]
    fn eye_mouth_subset_picks_right_indices() {
        let face: Vec<[f32; 3]> = (0..68).map(|i| [i as f32, 0.0, 0.0]).collect();
        let sub = KeypointSchema::eye_mouth_subset(&face);
        assert_eq!(sub.len(), 32);
        assert_eq!(sub[0][0], 36.0);
        assert_eq!(sub[11][0], 47.0);
        assert_eq!(sub[12][0], 48.0);
        assert_eq!(sub[31][0], 67.0);
    }

    #[test]
    #[should_panic(expected = "Face68")]
    fn subset_rejects_wrong_size() {
        KeypointSchema::eye_mouth_subset(&[[0.0; 3]; 21]);
    }

    #[test]
    fn bytes_round_trip() {
        let f = KeypointFrame {
            points: vec![[1.5, -2.0, 0.25], [0.0, 9.75, -1.0]],
        };
        let b = f.to_bytes();
        assert_eq!(b.len(), 24);
        assert_eq!(KeypointFrame::from_bytes(&b), Some(f));
    }

    #[test]
    fn from_bytes_rejects_ragged_input() {
        assert!(KeypointFrame::from_bytes(&[0u8; 13]).is_none());
    }

    #[test]
    fn persona_frame_is_888_bytes() {
        // 74 keypoints × 3 coords × 4 bytes: the §4.3 bandwidth arithmetic.
        let f = KeypointFrame::zeros(PERSONA_KEYPOINTS);
        assert_eq!(f.to_bytes().len(), 888);
    }

    #[test]
    fn concat_preserves_order() {
        let a = KeypointFrame {
            points: vec![[1.0, 0.0, 0.0]],
        };
        let b = KeypointFrame {
            points: vec![[2.0, 0.0, 0.0], [3.0, 0.0, 0.0]],
        };
        let c = KeypointFrame::concat(&[&a, &b]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.points[2][0], 3.0);
    }

    #[test]
    fn displacement_metric() {
        let a = KeypointFrame::zeros(2);
        let mut b = KeypointFrame::zeros(2);
        b.points[1][2] = -0.5;
        assert_eq!(a.max_displacement(&b), Some(0.5));
        assert!(a.max_displacement(&KeypointFrame::zeros(3)).is_none());
    }
}
