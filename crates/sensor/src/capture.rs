//! RGB-D capture substitute.
//!
//! Stands in for the ZED 2i camera of the §4.3 keypoint experiment: the
//! paper captures "a video of 2,000 frames containing the head and hand
//! regions", extracts dlib face and OpenPose hand keypoints, keeps the
//! eye+mouth subset, and measures the compressed stream rate.
//! [`RgbdCapture`] produces the same trace synthetically — per-frame
//! Face68 + two Hand21 keypoint sets with tracker noise — and exposes the
//! 74-point persona subset.

use crate::keypoints::{KeypointFrame, KeypointSchema, PERSONA_KEYPOINTS};
use crate::motion::{FaceMotion, HandMotion, MotionConfig};
use visionsim_core::rng::SimRng;

/// One captured frame: full face plus both hands.
#[derive(Clone, Debug, PartialEq)]
pub struct CapturedFrame {
    /// dlib Face68 keypoints.
    pub face: KeypointFrame,
    /// OpenPose Hand21, left hand.
    pub left_hand: KeypointFrame,
    /// OpenPose Hand21, right hand.
    pub right_hand: KeypointFrame,
}

impl CapturedFrame {
    /// The 74-point persona subset: eye+mouth (32) ‖ left hand ‖ right
    /// hand.
    pub fn persona_subset(&self) -> KeypointFrame {
        let eye_mouth = KeypointFrame {
            points: KeypointSchema::eye_mouth_subset(&self.face.points),
        };
        let all = KeypointFrame::concat(&[&eye_mouth, &self.left_hand, &self.right_hand]);
        debug_assert_eq!(all.len(), PERSONA_KEYPOINTS);
        all
    }
}

/// The synthetic RGB-D camera: drives the motion models at the configured
/// frame rate.
#[derive(Clone, Debug)]
pub struct RgbdCapture {
    face: FaceMotion,
    left: HandMotion,
    right: HandMotion,
    frames: u64,
}

impl RgbdCapture {
    /// A capture session with the given motion configuration.
    pub fn new(config: MotionConfig) -> Self {
        RgbdCapture {
            face: FaceMotion::new(config.clone()),
            left: HandMotion::new(config.clone(), -1.0),
            right: HandMotion::new(config, 1.0),
            frames: 0,
        }
    }

    /// A 90 FPS default session.
    pub fn default_session() -> Self {
        Self::new(MotionConfig::default())
    }

    /// Capture the next frame.
    pub fn next_frame(&mut self, rng: &mut SimRng) -> CapturedFrame {
        self.frames += 1;
        CapturedFrame {
            face: self.face.next_frame(rng),
            left_hand: self.left.next_frame(rng),
            right_hand: self.right.next_frame(rng),
        }
    }

    /// Capture a trace of `n` frames (the paper uses 2,000).
    pub fn capture_trace(&mut self, n: usize, rng: &mut SimRng) -> Vec<CapturedFrame> {
        (0..n).map(|_| self.next_frame(rng)).collect()
    }

    /// Frames captured so far.
    pub fn frames_captured(&self) -> u64 {
        self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captured_frame_has_all_parts() {
        let mut cap = RgbdCapture::default_session();
        let mut rng = SimRng::seed_from_u64(1);
        let f = cap.next_frame(&mut rng);
        assert_eq!(f.face.len(), 68);
        assert_eq!(f.left_hand.len(), 21);
        assert_eq!(f.right_hand.len(), 21);
    }

    #[test]
    fn persona_subset_is_74_points() {
        let mut cap = RgbdCapture::default_session();
        let mut rng = SimRng::seed_from_u64(2);
        let f = cap.next_frame(&mut rng);
        assert_eq!(f.persona_subset().len(), 74);
    }

    #[test]
    fn trace_length_matches_request() {
        let mut cap = RgbdCapture::default_session();
        let mut rng = SimRng::seed_from_u64(3);
        let trace = cap.capture_trace(200, &mut rng);
        assert_eq!(trace.len(), 200);
        assert_eq!(cap.frames_captured(), 200);
    }

    #[test]
    fn trace_is_deterministic() {
        let run = || {
            let mut cap = RgbdCapture::default_session();
            let mut rng = SimRng::seed_from_u64(4);
            cap.capture_trace(50, &mut rng)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hands_sit_apart_from_the_face() {
        let mut cap = RgbdCapture::default_session();
        let mut rng = SimRng::seed_from_u64(5);
        let f = cap.next_frame(&mut rng);
        let face_y = f.face.points[0][1];
        let hand_y = f.left_hand.points[0][1];
        assert!(hand_y < face_y, "hands should hang below the face");
    }

    #[test]
    fn subset_points_change_frame_to_frame() {
        let mut cap = RgbdCapture::default_session();
        let mut rng = SimRng::seed_from_u64(6);
        let a = cap.next_frame(&mut rng).persona_subset();
        let b = cap.next_frame(&mut rng).persona_subset();
        assert!(a.max_displacement(&b).unwrap() > 0.0);
    }
}
