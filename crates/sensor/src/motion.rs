//! Synthetic face and hand motion.
//!
//! The spatial persona tracks eye and mouth regions plus both hands. The
//! motion models synthesize plausible keypoint dynamics at the display
//! rate:
//!
//! * head pose — a damped random walk (people do not hold perfectly still);
//! * blinks — Poisson arrivals (~0.25 Hz) with ~150 ms lid closures;
//! * speech — talk spurts alternating with silence; while talking, the
//!   mouth opens/closes at syllabic rate (~4 Hz) with jitter;
//! * hands — rest/gesture states with smooth transitions;
//! * tracker noise — per-coordinate Gaussian jitter, the resolution limit
//!   of real keypoint extractors (dlib/OpenPose on RGB-D).
//!
//! All randomness flows through a caller-provided [`SimRng`].

use crate::keypoints::{KeypointFrame, KeypointSchema};
use visionsim_core::rng::SimRng;

/// Motion-model parameters.
#[derive(Clone, Debug)]
pub struct MotionConfig {
    /// Frame rate the trace is synthesized at.
    pub fps: f64,
    /// Mean blink rate, Hz.
    pub blink_rate_hz: f64,
    /// Blink duration, seconds.
    pub blink_duration_s: f64,
    /// Fraction of time spent talking.
    pub talk_fraction: f64,
    /// Syllabic mouth rate while talking, Hz.
    pub syllable_rate_hz: f64,
    /// Tracker noise sigma per coordinate, metres.
    pub tracker_noise_m: f64,
}

impl Default for MotionConfig {
    fn default() -> Self {
        MotionConfig {
            fps: 90.0,
            blink_rate_hz: 0.25,
            blink_duration_s: 0.15,
            talk_fraction: 0.5,
            syllable_rate_hz: 4.0,
            tracker_noise_m: 0.0004,
        }
    }
}

/// Neutral dlib-68 face template (metres, face centred at origin, looking
/// down +Z). Only the eye and mouth regions need anatomical fidelity; the
/// rest is a plausible oval.
fn face_template() -> Vec<[f32; 3]> {
    let mut pts = Vec::with_capacity(68);
    // 0-16: jaw line — half ellipse.
    for i in 0..17 {
        let t = std::f32::consts::PI * (i as f32 / 16.0);
        pts.push([0.075 * t.cos(), -0.03 - 0.055 * t.sin(), 0.01]);
    }
    // 17-26: brows.
    for i in 0..10 {
        let x = -0.05 + 0.1 * (i as f32 / 9.0);
        pts.push([x, 0.035, 0.02]);
    }
    // 27-35: nose bridge + base.
    for i in 0..4 {
        pts.push([0.0, 0.02 - 0.012 * i as f32, 0.03 + 0.004 * i as f32]);
    }
    for i in 0..5 {
        pts.push([-0.012 + 0.006 * i as f32, -0.022, 0.032]);
    }
    // 36-41: right eye; 42-47: left eye (hexagons).
    for side in [-1.0f32, 1.0] {
        let cx = side * 0.032;
        for i in 0..6 {
            let t = std::f32::consts::TAU * (i as f32 / 6.0);
            pts.push([cx + 0.012 * t.cos(), 0.012 + 0.006 * t.sin(), 0.022]);
        }
    }
    // 48-59: outer lip ring; 60-67: inner lip ring.
    for i in 0..12 {
        let t = std::f32::consts::TAU * (i as f32 / 12.0);
        pts.push([0.025 * t.cos(), -0.045 + 0.012 * t.sin(), 0.024]);
    }
    for i in 0..8 {
        let t = std::f32::consts::TAU * (i as f32 / 8.0);
        pts.push([0.015 * t.cos(), -0.045 + 0.006 * t.sin(), 0.024]);
    }
    debug_assert_eq!(pts.len(), 68);
    pts
}

/// OpenPose-21 neutral hand template (wrist at origin).
fn hand_template() -> Vec<[f32; 3]> {
    let mut pts = vec![[0.0, 0.0, 0.0]]; // wrist
    for finger in 0..5 {
        let spread = (finger as f32 - 2.0) * 0.018;
        for joint in 1..=4 {
            pts.push([spread, 0.02 * joint as f32, 0.0]);
        }
    }
    debug_assert_eq!(pts.len(), 21);
    pts
}

/// Face motion synthesizer.
#[derive(Clone, Debug)]
pub struct FaceMotion {
    config: MotionConfig,
    template: Vec<[f32; 3]>,
    /// Head pose offset (x, y, z) and its velocity — damped random walk.
    pose: [f64; 3],
    pose_vel: [f64; 3],
    /// Remaining blink time, seconds (0 = eyes open).
    blink_left_s: f64,
    /// Remaining talk-spurt (positive) or silence (negative) time.
    talk_left_s: f64,
    talking: bool,
    /// Phase of the syllabic oscillator.
    syllable_phase: f64,
    frame_index: u64,
}

impl FaceMotion {
    /// A synthesizer with the given config.
    pub fn new(config: MotionConfig) -> Self {
        FaceMotion {
            config,
            template: face_template(),
            pose: [0.0; 3],
            pose_vel: [0.0; 3],
            blink_left_s: 0.0,
            talk_left_s: 0.0,
            talking: false,
            syllable_phase: 0.0,
            frame_index: 0,
        }
    }

    /// Frames generated so far.
    pub fn frames_generated(&self) -> u64 {
        self.frame_index
    }

    /// True while a blink is in progress.
    pub fn blinking(&self) -> bool {
        self.blink_left_s > 0.0
    }

    /// True while inside a talk spurt.
    pub fn talking(&self) -> bool {
        self.talking
    }

    /// Synthesize the next Face68 frame.
    pub fn next_frame(&mut self, rng: &mut SimRng) -> KeypointFrame {
        let dt = 1.0 / self.config.fps;
        // Head pose: damped random walk (spring toward neutral).
        for a in 0..3 {
            self.pose_vel[a] += rng.normal(0.0, 0.002) * dt.sqrt() - self.pose[a] * 0.5 * dt
                - self.pose_vel[a] * 1.0 * dt;
            self.pose[a] += self.pose_vel[a] * dt;
        }
        // Blink process.
        if self.blink_left_s > 0.0 {
            self.blink_left_s -= dt;
        } else if rng.chance(self.config.blink_rate_hz * dt) {
            self.blink_left_s = self.config.blink_duration_s;
        }
        // Talk spurts: exponential durations biased by talk_fraction.
        self.talk_left_s -= dt;
        if self.talk_left_s <= 0.0 {
            self.talking = rng.chance(self.config.talk_fraction);
            self.talk_left_s = rng.exponential(2.0);
        }
        if self.talking {
            self.syllable_phase +=
                std::f64::consts::TAU * self.config.syllable_rate_hz * dt * rng.jitter(1.0, 0.2);
        }
        let mouth_open = if self.talking {
            0.008 * (0.5 - 0.5 * self.syllable_phase.cos())
        } else {
            0.0
        };
        let blink_close = if self.blinking() { 1.0f32 } else { 0.0 };

        let mut points = self.template.clone();
        for (i, p) in points.iter_mut().enumerate() {
            // Rigid head offset.
            p[0] += self.pose[0] as f32;
            p[1] += self.pose[1] as f32;
            p[2] += self.pose[2] as f32;
            // Eyes: collapse vertically during a blink.
            if KeypointSchema::eye_indices().contains(&i) {
                let lid_center = 0.012 + self.pose[1] as f32;
                p[1] = p[1] * (1.0 - blink_close) + lid_center * blink_close;
            }
            // Mouth: lower lip (outer 54..59 bottom half + inner 64..67)
            // drops with mouth_open.
            if (54..=59).contains(&i) || (64..=67).contains(&i) {
                p[1] -= mouth_open as f32;
            }
            // Tracker noise.
            for c in p.iter_mut() {
                *c += rng.normal(0.0, self.config.tracker_noise_m) as f32;
            }
        }
        self.frame_index += 1;
        KeypointFrame { points }
    }
}

/// Hand motion synthesizer (one hand).
#[derive(Clone, Debug)]
pub struct HandMotion {
    config: MotionConfig,
    template: Vec<[f32; 3]>,
    /// Base offset of the whole hand.
    offset: [f64; 3],
    /// Gesture intensity in `[0, 1]` and its target.
    gesture: f64,
    gesture_target: f64,
    /// Seconds until the next gesture decision.
    next_decision_s: f64,
    phase: f64,
}

impl HandMotion {
    /// A synthesizer for one hand, `side` = −1 (left) or +1 (right).
    pub fn new(config: MotionConfig, side: f64) -> Self {
        HandMotion {
            config,
            template: hand_template(),
            offset: [side * 0.25, -0.35, 0.1],
            gesture: 0.0,
            gesture_target: 0.0,
            next_decision_s: 0.0,
            phase: 0.0,
        }
    }

    /// Synthesize the next Hand21 frame.
    pub fn next_frame(&mut self, rng: &mut SimRng) -> KeypointFrame {
        let dt = 1.0 / self.config.fps;
        self.next_decision_s -= dt;
        if self.next_decision_s <= 0.0 {
            // Hands gesture ~30% of the time during conversation.
            self.gesture_target = if rng.chance(0.3) { 1.0 } else { 0.0 };
            self.next_decision_s = rng.exponential(3.0);
        }
        // Smooth approach to the target.
        self.gesture += (self.gesture_target - self.gesture) * (2.0 * dt).min(1.0);
        self.phase += std::f64::consts::TAU * 1.5 * dt;
        let wave = self.gesture * 0.04 * self.phase.sin();
        let mut points = self.template.clone();
        for p in &mut points {
            p[0] += self.offset[0] as f32 + wave as f32;
            p[1] += self.offset[1] as f32 + (self.gesture * 0.15) as f32;
            p[2] += self.offset[2] as f32;
            for c in p.iter_mut() {
                *c += rng.normal(0.0, self.config.tracker_noise_m) as f32;
            }
        }
        KeypointFrame { points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn face_frames_have_68_points() {
        let mut m = FaceMotion::new(MotionConfig::default());
        let mut rng = SimRng::seed_from_u64(1);
        let f = m.next_frame(&mut rng);
        assert_eq!(f.len(), 68);
        assert_eq!(m.frames_generated(), 1);
    }

    #[test]
    fn hand_frames_have_21_points() {
        let mut m = HandMotion::new(MotionConfig::default(), 1.0);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(m.next_frame(&mut rng).len(), 21);
    }

    #[test]
    fn motion_is_deterministic_given_seed() {
        let run = || {
            let mut m = FaceMotion::new(MotionConfig::default());
            let mut rng = SimRng::seed_from_u64(99);
            (0..50).map(|_| m.next_frame(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn consecutive_frames_move_a_little_not_a_lot() {
        let mut m = FaceMotion::new(MotionConfig::default());
        let mut rng = SimRng::seed_from_u64(2);
        let mut prev = m.next_frame(&mut rng);
        for _ in 0..300 {
            let next = m.next_frame(&mut rng);
            let d = prev.max_displacement(&next).unwrap();
            assert!(d > 0.0, "frames identical — no liveness");
            assert!(d < 0.02, "frame-to-frame jump {d} m is implausible");
            prev = next;
        }
    }

    #[test]
    fn blinks_happen_at_roughly_configured_rate() {
        let cfg = MotionConfig {
            blink_rate_hz: 1.0,
            ..MotionConfig::default()
        };
        let mut m = FaceMotion::new(cfg);
        let mut rng = SimRng::seed_from_u64(3);
        let frames = 90 * 60; // one minute
        let mut blinks = 0;
        let mut was_blinking = false;
        for _ in 0..frames {
            m.next_frame(&mut rng);
            if m.blinking() && !was_blinking {
                blinks += 1;
            }
            was_blinking = m.blinking();
        }
        assert!((20..=100).contains(&blinks), "blinks = {blinks}");
    }

    #[test]
    fn blinking_narrows_eye_region() {
        let cfg = MotionConfig {
            tracker_noise_m: 0.0,
            blink_rate_hz: 1_000.0, // force an immediate blink
            ..MotionConfig::default()
        };
        let mut m = FaceMotion::new(cfg);
        let mut rng = SimRng::seed_from_u64(4);
        let mut open_spread = 0.0f32;
        let mut closed_spread = f32::MAX;
        for _ in 0..30 {
            let f = m.next_frame(&mut rng);
            let ys: Vec<f32> = KeypointSchema::eye_indices()
                .map(|i| f.points[i][1])
                .collect();
            let spread = ys.iter().cloned().fold(f32::MIN, f32::max)
                - ys.iter().cloned().fold(f32::MAX, f32::min);
            if m.blinking() {
                closed_spread = closed_spread.min(spread);
            } else {
                open_spread = open_spread.max(spread);
            }
        }
        assert!(
            closed_spread < open_spread,
            "blink should narrow eyes: closed {closed_spread} vs open {open_spread}"
        );
    }

    #[test]
    fn talking_moves_the_mouth_more_than_silence() {
        let run = |talk: f64, seed: u64| {
            let cfg = MotionConfig {
                talk_fraction: talk,
                tracker_noise_m: 0.0,
                ..MotionConfig::default()
            };
            let mut m = FaceMotion::new(cfg);
            let mut rng = SimRng::seed_from_u64(seed);
            let mut travel = 0.0f32;
            let mut prev = m.next_frame(&mut rng);
            for _ in 0..900 {
                let next = m.next_frame(&mut rng);
                for i in 54..=59 {
                    travel += (next.points[i][1] - prev.points[i][1]).abs();
                }
                prev = next;
            }
            travel
        };
        assert!(run(1.0, 5) > run(0.0, 5) * 3.0);
    }

    #[test]
    fn hands_are_mirrored_left_right() {
        let cfg = MotionConfig {
            tracker_noise_m: 0.0,
            ..MotionConfig::default()
        };
        let mut l = HandMotion::new(cfg.clone(), -1.0);
        let mut r = HandMotion::new(cfg, 1.0);
        let mut rng1 = SimRng::seed_from_u64(6);
        let mut rng2 = SimRng::seed_from_u64(6);
        let lf = l.next_frame(&mut rng1);
        let rf = r.next_frame(&mut rng2);
        assert!((lf.points[0][0] + rf.points[0][0]).abs() < 1e-5);
    }
}
