//! Thread-count determinism: every formatted artifact must be
//! byte-identical whether the harness runs on one worker or all cores —
//! and, with the flight recorder on, the deterministic metrics snapshot
//! must be identical too.
//!
//! Every test takes the `core::par::override_guard` so the process-global
//! knobs (`set_threads`, `trace::force`, `metrics::force`) are never raced
//! by the libtest runner.

use visionsim::experiments::{extensions, figure6, fleet, mesh_streaming, resilience, storms, table1};
use visionsim::core::{metrics, par, trace};

/// Render a small-but-representative slice of the suite at `seed`.
fn artifacts(seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}", table1::run(3, seed)));
    out.push_str(&format!("{}", figure6::run(4, seed)));
    out.push_str(&format!("{}", mesh_streaming::run(2, seed)));
    out.push_str(&format!("{}", resilience::run(8, seed)));
    out.push_str(&extensions::format_fec(&extensions::fec_under_loss(
        60, 1_500, seed,
    )));
    out.push_str(&format!("{}", storms::run(12, seed)));
    out.push_str(&format!("{}", fleet::run_smoke(seed)));
    out
}

#[test]
fn parallel_output_is_byte_identical_to_sequential() {
    // `set_threads` is process-global; serialize against any other test
    // in this binary that flips it.
    let _guard = par::override_guard();
    for seed in [2024u64, 7] {
        par::set_threads(Some(1));
        let sequential = artifacts(seed);
        // Force a real pool (not `None`): on a single-core runner the
        // default resolution would degrade to inline execution and the
        // test would compare nothing.
        par::set_threads(Some(4));
        let parallel = artifacts(seed);
        par::set_threads(None);
        assert!(
            par::threads() >= 1,
            "thread resolution must fall back to the environment"
        );
        assert_eq!(
            sequential, parallel,
            "seed {seed}: parallel output diverged from single-thread"
        );
    }
}

#[test]
fn metrics_are_identical_across_thread_counts_with_tracing_on() {
    let _guard = par::override_guard();
    trace::force(Some(true));
    metrics::force(Some(true));

    let mut baseline: Option<(String, String)> = None;
    for threads in [1usize, 4, 8] {
        par::set_threads(Some(threads));
        metrics::reset();
        trace::reset();
        let text = artifacts(2024);
        // Only the deterministic (`Class::Sim`) values; wall-clock
        // histograms legitimately differ run to run.
        let snap = metrics::snapshot_json(false);

        // The per-link byte counters must satisfy the same conservation
        // identity the sanitizer checks on every drained network:
        // accepted + duplicated bytes all either exited or are still in
        // flight when the session ends.
        let sent = metrics::counter_value("net/link_bytes_sent").expect("counter registered");
        let dup = metrics::counter_value("net/link_dup_bytes").expect("counter registered");
        let exited = metrics::counter_value("net/link_bytes_exited").expect("counter registered");
        let in_flight = metrics::gauge_value("net/in_flight_bytes").expect("gauge registered");
        assert!(sent > 0, "the suite must exercise the datapath");
        assert!(in_flight >= 0, "in-flight bytes can never go negative");
        assert_eq!(
            sent + dup,
            exited + in_flight as u64,
            "{threads} threads: metrics counters broke the byte-conservation identity"
        );

        match &baseline {
            None => baseline = Some((text, snap)),
            Some((text0, snap0)) => {
                assert_eq!(
                    &text, text0,
                    "{threads} threads: artifacts diverged with tracing on"
                );
                assert_eq!(
                    &snap, snap0,
                    "{threads} threads: metrics snapshot diverged"
                );
            }
        }
    }

    par::set_threads(None);
    trace::force(None);
    metrics::force(None);
    metrics::reset();
    trace::reset();
}
