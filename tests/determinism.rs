//! Thread-count determinism: every formatted artifact must be
//! byte-identical whether the harness runs on one worker or all cores.
//!
//! A single test function drives both configurations so the global
//! `core::par::set_threads` override is never raced by the libtest runner.

use visionsim::experiments::{extensions, figure6, mesh_streaming, resilience, table1};
use visionsim::core::par;

/// Render a small-but-representative slice of the suite at `seed`.
fn artifacts(seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}", table1::run(3, seed)));
    out.push_str(&format!("{}", figure6::run(4, seed)));
    out.push_str(&format!("{}", mesh_streaming::run(2, seed)));
    out.push_str(&format!("{}", resilience::run(8, seed)));
    out.push_str(&extensions::format_fec(&extensions::fec_under_loss(
        60, 1_500, seed,
    )));
    out
}

#[test]
fn parallel_output_is_byte_identical_to_sequential() {
    // `set_threads` is process-global; serialize against any other test
    // in this binary that flips it.
    let _guard = par::override_guard();
    for seed in [2024u64, 7] {
        par::set_threads(Some(1));
        let sequential = artifacts(seed);
        // Force a real pool (not `None`): on a single-core runner the
        // default resolution would degrade to inline execution and the
        // test would compare nothing.
        par::set_threads(Some(4));
        let parallel = artifacts(seed);
        par::set_threads(None);
        assert!(
            par::threads() >= 1,
            "thread resolution must fall back to the environment"
        );
        assert_eq!(
            sequential, parallel,
            "seed {seed}: parallel output diverged from single-thread"
        );
    }
}
