//! Cross-crate integration: the full capture → encode → transport →
//! network → reassemble → decode → reconstruct pipeline, exercised
//! end-to-end without the session engine, and the session engine's
//! global invariants.

use visionsim::core::rng::SimRng;
use visionsim::core::time::{SimDuration, SimTime};
use visionsim::device::cameras::PersonaCapturePipeline;
use visionsim::geo::cities;
use visionsim::geo::coords::GeoPoint;
use visionsim::geo::sites::Provider;
use visionsim::net::link::LinkConfig;
use visionsim::net::network::Network;
use visionsim::net::packet::PortPair;
use visionsim::semantic::codec::{SemanticCodec, SemanticConfig};
use visionsim::semantic::packetize::{Fragment, FrameAssembler, Packetizer};
use visionsim::semantic::reconstruct::PersonaRig;
use visionsim::transport::cipher;
use visionsim::transport::quic::{QuicPacket, QuicStreamSender};
use visionsim::vca::session::{SessionConfig, SessionRunner};
use visionsim::device::device::DeviceKind;

/// Drive a persona stream through a real network hop and reconstruct the
/// mesh at the far end; verify geometric fidelity.
#[test]
fn semantic_pipeline_reconstructs_geometry_across_the_network() {
    let mut rng = SimRng::seed_from_u64(77);
    let key: cipher::Key = [9u8; 32];

    // Sender side: pre-captured persona + live keypoints.
    let mut sender_pipeline = PersonaCapturePipeline::pre_capture(5);
    let persona_mesh = visionsim::mesh::lod::decimate_to(sender_pipeline.persona_mesh(), 4_000);
    let mut codec = SemanticCodec::new(SemanticConfig::default());
    let mut packetizer = Packetizer::new();
    let mut quic = QuicStreamSender::new(*b"E2ETEST1", 0, key);

    // Network: one WAN hop.
    let mut net = Network::new(1);
    let a = net.add_node("sender", "client", GeoPoint::new(37.77, -122.42));
    let b = net.add_node("receiver", "client", GeoPoint::new(40.71, -74.01));
    net.add_duplex(a, b, LinkConfig::core(SimDuration::from_millis(35)));

    // Receiver side: rig bound to the first frame (session setup).
    let reference = sender_pipeline.capture_semantics(&mut rng);
    let mut rig = PersonaRig::bind(persona_mesh, reference.clone(), 0.02);
    let mut dec_codec = SemanticCodec::new(SemanticConfig::default());
    let mut assembler = FrameAssembler::new();

    let mut reconstructed_frames = 0;
    for tick in 0..90 {
        let frame = sender_pipeline.capture_semantics(&mut rng);
        let payload = codec.encode(&frame);
        for frag in packetizer.split(&payload) {
            let wire = quic.send(frag.to_bytes());
            net.send(a, b, PortPair::new(5000, 443), wire).expect("routable");
        }
        net.run_until(SimTime::from_nanos(
            (tick + 1) * SimDuration::FRAME_90FPS.as_nanos(),
        ) + SimDuration::from_millis(40));
        for d in net.poll_delivered(b) {
            let pkt = QuicPacket::parse(&d.packet.payload, &key).expect("valid framing");
            let frames = match pkt {
                QuicPacket::Short { frames, .. } | QuicPacket::Long { frames, .. } => frames,
            };
            for f in frames {
                if let visionsim::transport::quic::QuicFrame::Stream { data, .. } = f {
                    let frag = Fragment::parse(&data).expect("valid fragment");
                    if let Some((_, payload)) = assembler.push(frag) {
                        let decoded = dec_codec.decode(&payload).expect("clean channel");
                        rig.apply(&decoded).expect("schema matches");
                        reconstructed_frames += 1;
                        // The decoded keypoints are bit-exact (absolute
                        // mode), so deformation is driven by true motion.
                        assert_eq!(decoded.len(), 74);
                    }
                }
            }
        }
    }
    assert!(
        reconstructed_frames >= 85,
        "only {reconstructed_frames}/90 frames reconstructed"
    );
    let current = rig.current().expect("frames were applied");
    assert!(current.validate().is_ok());
}

/// Same-seed sessions replay identically; different seeds differ.
#[test]
fn sessions_are_deterministic_in_the_seed() {
    let run = |seed: u64| {
        let mut cfg = SessionConfig::two_party(
            Provider::FaceTime,
            (
                DeviceKind::VisionPro,
                cities::by_name("San Francisco, CA").unwrap(),
            ),
            (
                DeviceKind::VisionPro,
                cities::by_name("New York, NY").unwrap(),
            ),
            seed,
        );
        cfg.duration = SimDuration::from_secs(5);
        let out = SessionRunner::new(cfg).run();
        (
            out.taps[0].len(),
            out.semantic_frame_sizes.clone(),
            out.counters[0].gpu_boxplot().mean,
        )
    };
    let a = run(1234);
    let b = run(1234);
    assert_eq!(a.0, b.0, "tap record counts differ");
    assert_eq!(a.1, b.1, "semantic payload sizes differ");
    assert_eq!(a.2, b.2, "render statistics differ");
    let c = run(5678);
    assert_ne!(a.1, c.1, "different seeds produced identical streams");
}

/// Conservation at the AP: bytes the tap sees uplink equal what the
/// semantic sender emitted plus framing + encapsulation overheads.
#[test]
fn tap_accounting_is_consistent_with_sender_output() {
    let mut cfg = SessionConfig::two_party(
        Provider::FaceTime,
        (
            DeviceKind::VisionPro,
            cities::by_name("San Francisco, CA").unwrap(),
        ),
        (
            DeviceKind::VisionPro,
            cities::by_name("New York, NY").unwrap(),
        ),
        99,
    );
    cfg.duration = SimDuration::from_secs(6);
    let out = SessionRunner::new(cfg).run();

    // Sender 0's semantic payloads (both senders interleave in
    // semantic_frame_sizes; halve the total).
    let payload_total: usize = out.semantic_frame_sizes.iter().sum::<usize>() / 2;

    // Media flow only (src port 5000 = sender 0's persona stream); the
    // session also carries audio (port 5200) and, in 2D modes, RTCP.
    let uplink_total: u64 = out.taps[0]
        .iter()
        .filter(|r| r.src == out.client_addrs[0] && r.ports.src == 5_000)
        .map(|r| r.wire_size.as_bytes())
        .sum();
    // Uplink wire bytes = payloads + (fragment header 12 + QUIC ~11-13 +
    // IP/UDP 28) per packet. One fragment per frame at these sizes.
    let packets = out.taps[0]
        .iter()
        .filter(|r| r.src == out.client_addrs[0] && r.ports.src == 5_000)
        .count() as u64;
    let overhead_lo = packets * 45;
    let overhead_hi = packets * 70;
    assert!(
        uplink_total > payload_total as u64 + overhead_lo
            && uplink_total < payload_total as u64 + overhead_hi,
        "uplink {uplink_total} vs payload {payload_total} + overhead [{overhead_lo},{overhead_hi}]"
    );
}

/// The SFU actually forwards: each receiver gets every other sender's
/// stream, and the server's identity matches the assignment.
#[test]
fn sfu_fanout_reaches_every_participant() {
    let cities = cities::us_vantages();
    let mut cfg = SessionConfig::facetime_avp(4, &cities, 31);
    cfg.duration = SimDuration::from_secs(5);
    let out = SessionRunner::new(cfg).run();
    let assignment = out.assignment.as_ref().expect("SFU session");
    // Initiator is in SF (first vantage) → Western FaceTime site.
    assert_eq!(assignment.attachments[0].label, "W");
    for (i, tap) in out.taps.iter().enumerate() {
        // Each participant's downlink carries the 3 remote media streams
        // (ports 5000..5004) plus their 3 audio streams (5200..5204).
        let mut src_ports: Vec<u16> = tap
            .iter()
            .filter(|r| r.dst == out.client_addrs[i])
            .map(|r| r.ports.src)
            .collect();
        src_ports.sort_unstable();
        src_ports.dedup();
        let media: Vec<u16> = src_ports.iter().copied().filter(|p| *p < 5_100).collect();
        let audio: Vec<u16> = src_ports.iter().copied().filter(|p| *p >= 5_200).collect();
        assert_eq!(media.len(), 3, "participant {i} media {media:?}");
        assert_eq!(audio.len(), 3, "participant {i} audio {audio:?}");
    }
}
