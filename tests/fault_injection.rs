//! Fault injection across the stack: loss, corruption, shaping, and
//! delay, pushed through the *full* session engine — the system must
//! degrade, never panic, and its degradation must match the designed
//! semantics (semantic streams fail hard, 2D streams adapt).

use visionsim::capture::analysis::CaptureAnalysis;
use visionsim::core::time::{SimDuration, SimTime};
use visionsim::core::units::DataRate;
use visionsim::device::device::DeviceKind;
use visionsim::geo::cities;
use visionsim::geo::sites::Provider;
use visionsim::net::fault::{FaultPlan, GeConfig};
use visionsim::vca::adaptation::PersonaMode;
use visionsim::vca::session::{SessionConfig, SessionRunner};

fn spatial_cfg(seed: u64) -> SessionConfig {
    let mut cfg = SessionConfig::two_party(
        Provider::FaceTime,
        (
            DeviceKind::VisionPro,
            cities::by_name("San Francisco, CA").unwrap(),
        ),
        (
            DeviceKind::VisionPro,
            cities::by_name("New York, NY").unwrap(),
        ),
        seed,
    );
    cfg.duration = SimDuration::from_secs(10);
    cfg
}

/// Extreme shaping (64 kbps) starves the stream completely; the session
/// still completes and reports the persona as unavailable.
#[test]
fn starved_uplink_is_survivable() {
    let mut cfg = spatial_cfg(1);
    cfg.uplink_limits = vec![(0, DataRate::from_kbps(64))];
    let out = SessionRunner::new(cfg).run();
    assert!(out.availability_fraction(1) < 0.5);
    // The receiver's own uplink is unconstrained; its persona flows fine
    // the other way.
    assert!(out.availability_fraction(0) > 0.8);
}

/// Both directions shaped at once, in one session: each participant's
/// incoming persona starves simultaneously.
#[test]
fn mutual_starvation_takes_both_personas_down() {
    let mut cfg = spatial_cfg(2);
    cfg.uplink_limits = vec![
        (0, DataRate::from_kbps(100)),
        (1, DataRate::from_kbps(100)),
    ];
    let out = SessionRunner::new(cfg).run();
    assert!(
        out.availability_fraction(0) < 0.5,
        "participant 0 still saw a persona: {}",
        out.availability_fraction(0)
    );
    assert!(
        out.availability_fraction(1) < 0.5,
        "participant 1 still saw a persona: {}",
        out.availability_fraction(1)
    );
}

/// Large injected delay does not reduce throughput or availability — the
/// stream is open-loop (no retransmission, no congestion response),
/// matching FaceTime's measured behaviour.
#[test]
fn delay_does_not_starve_an_open_loop_stream() {
    let mut cfg = spatial_cfg(3);
    cfg.extra_delay = Some((0, SimDuration::from_millis(800)));
    let out = SessionRunner::new(cfg).run();
    assert!(
        out.availability_fraction(1) > 0.8,
        "delay killed the persona: {}",
        out.availability_fraction(1)
    );
    let a = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
    assert!(a.uplink_rate().as_mbps_f64() > 0.3);
}

/// A Webex session under every impairment at once survives with reduced
/// quality.
#[test]
fn twod_session_survives_combined_impairments() {
    let mut cfg = SessionConfig::two_party(
        Provider::Webex,
        (
            DeviceKind::VisionPro,
            cities::by_name("Seattle, WA").unwrap(),
        ),
        (DeviceKind::IPad, cities::by_name("Miami, FL").unwrap()),
        4,
    );
    cfg.duration = SimDuration::from_secs(12);
    cfg.uplink_limits = vec![(0, DataRate::from_kbps(900))];
    cfg.extra_delay = Some((0, SimDuration::from_millis(200)));
    let out = SessionRunner::new(cfg).run();
    // Adapted down, still alive.
    assert!(out.final_quality[0] < 0.6, "q = {}", out.final_quality[0]);
    assert!(out.final_quality[0] >= 0.05);
    let a = CaptureAnalysis::new(out.taps[1].iter(), out.client_addrs[1]);
    assert!(a.downlink_rate().as_bps() > 0, "nothing arrived at U2");
}

/// Every device-mix combination on every provider runs to completion
/// (exhaustive smoke across the configuration matrix).
#[test]
fn configuration_matrix_never_panics() {
    let sf = cities::by_name("San Francisco, CA").unwrap();
    let chi = cities::by_name("Chicago, IL").unwrap();
    for provider in Provider::ALL {
        for peer in [
            DeviceKind::VisionPro,
            DeviceKind::MacBook,
            DeviceKind::IPad,
            DeviceKind::IPhone,
        ] {
            let mut cfg = SessionConfig::two_party(
                provider,
                (DeviceKind::VisionPro, sf),
                (peer, chi),
                5,
            );
            cfg.duration = SimDuration::from_secs(2);
            let out = SessionRunner::new(cfg).run();
            assert!(!out.taps[0].is_empty(), "{provider}/{peer}: empty capture");
        }
    }
}

/// A 2-second severe burst-loss episode mid-session: the degradation
/// ladder falls back to the 2D persona at most once (hysteresis — no
/// oscillation inside one episode) and recovers to spatial afterwards.
#[test]
fn burst_loss_falls_back_at_most_once_then_recovers() {
    let mut cfg = spatial_cfg(7);
    cfg.duration = SimDuration::from_secs(14);
    cfg.fault_plans = vec![(
        0,
        FaultPlan::burst_loss(
            SimTime::from_millis(4_000),
            GeConfig {
                good_to_bad: 0.05,
                bad_to_good: 0.02,
                loss_good: 0.0,
                loss_bad: 0.9,
            },
            SimDuration::from_secs(2),
        ),
    )];
    let out = SessionRunner::new(cfg).run();
    assert!(
        out.fallbacks[1] <= 1,
        "ladder oscillated during one episode: {} fallbacks",
        out.fallbacks[1]
    );
    let timeline = &out.mode_log[1];
    assert!(!timeline.is_empty(), "spatial session must log modes");
    assert_eq!(
        timeline.last().unwrap().1,
        PersonaMode::Spatial,
        "persona never recovered after the burst"
    );
    // The unimpaired direction never degrades at all.
    assert_eq!(out.fallbacks[0], 0);
}

/// The assigned SFU site dies mid-call: after the detection + reconnect
/// gap both clients reattach to the next-nearest live site and media
/// flows again — exactly one failover, and the persona is back by the
/// end of the session.
#[test]
fn sfu_failover_moves_the_session_and_recovers() {
    let mut cfg = spatial_cfg(8);
    cfg.duration = SimDuration::from_secs(14);
    cfg.fault_plans = vec![(
        0,
        FaultPlan::server_outage(
            SimTime::from_millis(4_000),
            SimDuration::from_secs(1),
            SimDuration::from_millis(500),
        ),
    )];
    let out = SessionRunner::new(cfg).run();
    assert_eq!(out.failovers.len(), 1, "expected one failover: {:?}", out.failovers);
    let (at, ref new_site) = out.failovers[0];
    // Completion no earlier than detect + reconnect after injection.
    assert!(at >= SimTime::from_millis(5_500), "failover completed early: {at:?}");
    // The replacement differs from the site the session started on.
    let original = out.assignment.as_ref().unwrap().attachments[0].label;
    assert_ne!(new_site, original, "failed over to the dead site");
    // Media is flowing again: the tail of the mode/availability timeline
    // is healthy for both participants.
    for p in [0, 1] {
        let tail: Vec<_> = out.mode_log[p]
            .iter()
            .filter(|(t, _)| *t >= SimTime::from_millis(11_000))
            .collect();
        assert!(!tail.is_empty());
        assert!(
            tail.iter().all(|(_, m)| *m == PersonaMode::Spatial),
            "participant {p} never recovered: {tail:?}"
        );
    }
}

/// Packet loss on a 2D session triggers the RTCP PLI loop: the receiver
/// asks for a keyframe, the sender honours every request.
#[test]
fn loss_triggers_pli_and_forced_keyframes() {
    let mut cfg = SessionConfig::two_party(
        Provider::Webex,
        (
            DeviceKind::VisionPro,
            cities::by_name("San Francisco, CA").unwrap(),
        ),
        (
            DeviceKind::MacBook,
            cities::by_name("New York, NY").unwrap(),
        ),
        9,
    );
    cfg.duration = SimDuration::from_secs(12);
    cfg.fault_plans = vec![(
        0,
        FaultPlan::burst_loss(
            SimTime::from_millis(3_000),
            GeConfig::wifi_bursts(),
            SimDuration::from_secs(4),
        ),
    )];
    let out = SessionRunner::new(cfg).run();
    assert!(
        out.pli_sent[1] > 0,
        "receiver never sent a PLI despite burst loss"
    );
    assert!(
        out.keyframes_forced[0] > 0,
        "sender ignored PLIs: {} sent, 0 honoured",
        out.pli_sent[1]
    );
    assert!(out.keyframes_forced[0] <= out.pli_sent[1]);
}

/// Three-to-five-party sessions with one impaired member: the impairment
/// stays contained to that member's streams.
#[test]
fn impairment_is_contained_in_group_sessions() {
    let cities = cities::us_vantages();
    let mut cfg = SessionConfig::facetime_avp(4, &cities, 6);
    cfg.duration = SimDuration::from_secs(10);
    cfg.uplink_limits = vec![(2, DataRate::from_kbps(100))];
    let out = SessionRunner::new(cfg).run();
    // Participant 2's persona is down for others, but 0's and 1's streams
    // still flow: availability is per-receiver over *all* incoming
    // personas, so others see partial loss (one of three personas gone ⇒
    // completeness ≈ 2/3 < 0.9 threshold...). The victim itself receives
    // everyone fine.
    assert!(
        out.availability_fraction(2) > 0.8,
        "victim's own downlink should be clean: {}",
        out.availability_fraction(2)
    );
}
