//! Fault injection across the stack: loss, corruption, shaping, and
//! delay, pushed through the *full* session engine — the system must
//! degrade, never panic, and its degradation must match the designed
//! semantics (semantic streams fail hard, 2D streams adapt).

use visionsim::capture::analysis::CaptureAnalysis;
use visionsim::core::time::SimDuration;
use visionsim::core::units::DataRate;
use visionsim::device::device::DeviceKind;
use visionsim::geo::cities;
use visionsim::geo::sites::Provider;
use visionsim::vca::session::{SessionConfig, SessionRunner};

fn spatial_cfg(seed: u64) -> SessionConfig {
    let mut cfg = SessionConfig::two_party(
        Provider::FaceTime,
        (
            DeviceKind::VisionPro,
            cities::by_name("San Francisco, CA").unwrap(),
        ),
        (
            DeviceKind::VisionPro,
            cities::by_name("New York, NY").unwrap(),
        ),
        seed,
    );
    cfg.duration = SimDuration::from_secs(10);
    cfg
}

/// Extreme shaping (64 kbps) starves the stream completely; the session
/// still completes and reports the persona as unavailable.
#[test]
fn starved_uplink_is_survivable() {
    let mut cfg = spatial_cfg(1);
    cfg.uplink_limit = Some((0, DataRate::from_kbps(64)));
    let out = SessionRunner::new(cfg).run();
    assert!(out.availability_fraction(1) < 0.5);
    // The receiver's own uplink is unconstrained; its persona flows fine
    // the other way.
    assert!(out.availability_fraction(0) > 0.8);
}

/// Both directions shaped at once.
#[test]
fn mutual_starvation_takes_both_personas_down() {
    let mut cfg = spatial_cfg(2);
    cfg.uplink_limit = Some((0, DataRate::from_kbps(100)));
    // Shape participant 1 as well by layering a second config run; the
    // config supports one shaped uplink, so assert the asymmetric case
    // then flip roles.
    let out = SessionRunner::new(cfg).run();
    assert!(out.availability_fraction(1) < 0.5);
    let mut cfg = spatial_cfg(2);
    cfg.uplink_limit = Some((1, DataRate::from_kbps(100)));
    let out = SessionRunner::new(cfg).run();
    assert!(out.availability_fraction(0) < 0.5);
}

/// Large injected delay does not reduce throughput or availability — the
/// stream is open-loop (no retransmission, no congestion response),
/// matching FaceTime's measured behaviour.
#[test]
fn delay_does_not_starve_an_open_loop_stream() {
    let mut cfg = spatial_cfg(3);
    cfg.extra_delay = Some((0, SimDuration::from_millis(800)));
    let out = SessionRunner::new(cfg).run();
    assert!(
        out.availability_fraction(1) > 0.8,
        "delay killed the persona: {}",
        out.availability_fraction(1)
    );
    let a = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
    assert!(a.uplink_rate().as_mbps_f64() > 0.3);
}

/// A Webex session under every impairment at once survives with reduced
/// quality.
#[test]
fn twod_session_survives_combined_impairments() {
    let mut cfg = SessionConfig::two_party(
        Provider::Webex,
        (
            DeviceKind::VisionPro,
            cities::by_name("Seattle, WA").unwrap(),
        ),
        (DeviceKind::IPad, cities::by_name("Miami, FL").unwrap()),
        4,
    );
    cfg.duration = SimDuration::from_secs(12);
    cfg.uplink_limit = Some((0, DataRate::from_kbps(900)));
    cfg.extra_delay = Some((0, SimDuration::from_millis(200)));
    let out = SessionRunner::new(cfg).run();
    // Adapted down, still alive.
    assert!(out.final_quality[0] < 0.6, "q = {}", out.final_quality[0]);
    assert!(out.final_quality[0] >= 0.05);
    let a = CaptureAnalysis::new(out.taps[1].iter(), out.client_addrs[1]);
    assert!(a.downlink_rate().as_bps() > 0, "nothing arrived at U2");
}

/// Every device-mix combination on every provider runs to completion
/// (exhaustive smoke across the configuration matrix).
#[test]
fn configuration_matrix_never_panics() {
    let sf = cities::by_name("San Francisco, CA").unwrap();
    let chi = cities::by_name("Chicago, IL").unwrap();
    for provider in Provider::ALL {
        for peer in [
            DeviceKind::VisionPro,
            DeviceKind::MacBook,
            DeviceKind::IPad,
            DeviceKind::IPhone,
        ] {
            let mut cfg = SessionConfig::two_party(
                provider,
                (DeviceKind::VisionPro, sf),
                (peer, chi),
                5,
            );
            cfg.duration = SimDuration::from_secs(2);
            let out = SessionRunner::new(cfg).run();
            assert!(!out.taps[0].is_empty(), "{provider}/{peer}: empty capture");
        }
    }
}

/// Three-to-five-party sessions with one impaired member: the impairment
/// stays contained to that member's streams.
#[test]
fn impairment_is_contained_in_group_sessions() {
    let cities = cities::us_vantages();
    let mut cfg = SessionConfig::facetime_avp(4, &cities, 6);
    cfg.duration = SimDuration::from_secs(10);
    cfg.uplink_limit = Some((2, DataRate::from_kbps(100)));
    let out = SessionRunner::new(cfg).run();
    // Participant 2's persona is down for others, but 0's and 1's streams
    // still flow: availability is per-receiver over *all* incoming
    // personas, so others see partial loss (one of three personas gone ⇒
    // completeness ≈ 2/3 < 0.9 threshold...). The victim itself receives
    // everyone fine.
    assert!(
        out.availability_fraction(2) > 0.8,
        "victim's own downlink should be clean: {}",
        out.availability_fraction(2)
    );
}
