//! Golden checksums across the zero-copy datapath refactor.
//!
//! The shared-payload refactor (`Packet.payload: Arc<[u8]>`, route cursors,
//! inline tap snippets) must not change a single output byte: these FNV-1a 64
//! checksums were recorded from the pre-refactor datapath and the regenerated
//! Figure 4 / Figure 6 / resilience artifacts must still hash to them at 1, 4,
//! and 8 worker threads.
//!
//! To re-record after an *intentional* output change, run with
//! `GOLDEN_PRINT=1` and paste the printed table:
//!
//! ```sh
//! GOLDEN_PRINT=1 cargo test --test golden -- --nocapture
//! ```

use visionsim::core::par;
use visionsim::experiments::harness::fnv1a64;
use visionsim::experiments::{figure4, figure6, resilience};

const SEED: u64 = 2024;

/// The artifact slice under checksum: the three experiment families whose
/// hot path is entirely `net::network` packet forwarding.
fn artifacts() -> [(&'static str, String); 3] {
    [
        ("figure4", format!("{}", figure4::run(2, 3, SEED))),
        ("figure6", format!("{}", figure6::run(3, SEED))),
        ("resilience", format!("{}", resilience::run(5, SEED))),
    ]
}

/// Checksums recorded from the pre-refactor (`Vec<u8>` payload) datapath.
const GOLDEN: [(&str, u64); 3] = [
    ("figure4", 0xf06c9073775c5dce),   // 601 bytes
    ("figure6", 0xe49c3db79e103424),   // 876 bytes
    ("resilience", 0x1c0614d4851436e3), // 2845 bytes
];

#[test]
fn artifacts_match_pre_refactor_golden_checksums_at_1_4_8_threads() {
    // `set_threads` is process-global; hold the override guard so no other
    // test in this binary races the worker count.
    let _guard = par::override_guard();
    for threads in [1usize, 4, 8] {
        par::set_threads(Some(threads));
        let got = artifacts();
        if std::env::var_os("GOLDEN_PRINT").is_some() {
            for (name, text) in &got {
                println!(
                    "    (\"{name}\", 0x{:016x}), // {} bytes @ {threads} threads",
                    fnv1a64(text.as_bytes()),
                    text.len()
                );
            }
            continue;
        }
        for ((name, text), (gname, golden)) in got.iter().zip(GOLDEN) {
            assert_eq!(*name, gname);
            assert_eq!(
                fnv1a64(text.as_bytes()),
                golden,
                "{name} @ {threads} threads diverged from the pre-refactor golden bytes"
            );
        }
    }
    par::set_threads(None);
}
