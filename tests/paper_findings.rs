//! The paper's key findings, re-verified end-to-end through the public
//! API — one test per bullet of the paper's abstract/introduction.

use visionsim::capture::analysis::CaptureAnalysis;
use visionsim::core::time::SimDuration;
use visionsim::device::device::DeviceKind;
use visionsim::experiments::{
    display_latency, figure4, keypoint_rate, mesh_streaming, rate_adaptation, table1,
};
use visionsim::geo::cities;
use visionsim::geo::sites::Provider;
use visionsim::vca::session::{SessionConfig, SessionRunner};

/// "All VCAs assign a server near the initiating user ... potentially
/// leading to ~80 ms network delays even when all users are located in
/// the US."
#[test]
fn finding_initiator_near_server_costs_80ms_cross_country() {
    let t = table1::run(5, 7);
    // The worst W-user or E-user entry against the opposite coast sits in
    // the tens of milliseconds, approaching ~80.
    let ft_e = t.col(Provider::FaceTime, "E").unwrap();
    let ft_w = t.col(Provider::FaceTime, "W").unwrap();
    let worst = t.mean_ms(0, ft_e).max(t.mean_ms(2, ft_w));
    assert!((55.0..95.0).contains(&worst), "worst cross-country {worst} ms");
}

/// "Only FaceTime offers a truly immersive telepresence experience with
/// spatial persona. Moreover, its bandwidth consumption (<0.7 Mbps) is
/// even lower than other platforms that deliver 2D personas."
#[test]
fn finding_spatial_persona_uses_least_bandwidth() {
    let fig = figure4::run(1, 12, 13);
    let spatial = fig.mean_of("F");
    assert!(spatial < 1.1, "spatial {spatial} Mbps");
    for label in ["F*", "Z", "W", "T"] {
        assert!(
            fig.mean_of(label) > spatial,
            "{label} ({}) not above spatial ({spatial})",
            fig.mean_of(label)
        );
    }
}

/// "FaceTime benefits from emerging semantic communication, instead of
/// streaming 3D content or 2D video" — the three-way §4.3 evidence.
#[test]
fn finding_semantic_communication_evidence() {
    // 3D streaming would need orders of magnitude more.
    let mesh = mesh_streaming::run(2, 17);
    assert!(mesh.gap_factor() > 50.0);
    // Pre-rendered video would make display latency track network delay.
    let lat = display_latency::run(60, 17);
    assert!(lat.worst_local_ms() < 16.0);
    // The keypoint stream matches the observed rate.
    let kp = keypoint_rate::run(600, 17);
    assert!((kp.rate_mbps - kp.persona_rate_mbps).abs() / kp.persona_rate_mbps < 0.45);
}

/// "The delivery of spatial persona does not support rate adaptation."
#[test]
fn finding_no_rate_adaptation_cliff() {
    let sweep = rate_adaptation::run(10, 19);
    let lowest = &sweep.points[0];
    let highest = sweep.points.last().unwrap();
    assert!(lowest.spatial_availability < 0.6, "survived starvation");
    assert!(highest.spatial_availability > 0.85, "never recovered");
    // 2D adapted instead of dying.
    assert!(lowest.webex_quality > 0.0 && lowest.webex_quality < 0.5);
}

/// "Spatial persona on FaceTime leverages visibility-aware optimizations
/// to decrease rendering time by up to 59%."
#[test]
fn finding_visibility_optimizations_cut_59_percent() {
    let fig = visionsim::experiments::figure5::run(150, 23);
    let bl = fig.row("BL").gpu_ms.mean();
    let v = fig.row("V").gpu_ms.mean();
    let cut = (bl - v) / bl;
    assert!((0.53..0.65).contains(&cut), "cut {:.0}%", cut * 100.0);
    // "Yet, they are not exploited to reduce bandwidth consumption":
    // uplink rate is viewport-independent in the session engine by
    // construction — the sender has no receiver-viewport input at all.
}

/// "The GPU processing time reaches ~9 ms per frame when there are five
/// users, close to the 11.1 ms deadline."
#[test]
fn finding_five_users_approach_the_deadline() {
    let fig = visionsim::experiments::figure6::run(10, 29);
    let five = fig.row(5);
    assert!(
        five.gpu_ms.p95 > 8.0 && five.gpu_ms.p95 < 11.1,
        "p95 {}",
        five.gpu_ms.p95
    );
}

/// §4.1: "Zoom and FaceTime rely on peer-to-peer communication when there
/// are only two users in a session, except for both users using Vision
/// Pro on FaceTime."
#[test]
fn finding_p2p_exception_for_spatial() {
    let sf = cities::by_name("San Francisco, CA").unwrap();
    let nyc = cities::by_name("New York, NY").unwrap();
    let topology = |provider, peer| {
        let mut cfg = SessionConfig::two_party(
            provider,
            (DeviceKind::VisionPro, sf),
            (peer, nyc),
            37,
        );
        cfg.duration = SimDuration::from_secs(3);
        SessionRunner::new(cfg).run().topology
    };
    use visionsim::vca::profile::Topology;
    assert_eq!(topology(Provider::Zoom, DeviceKind::MacBook), Topology::P2P);
    assert_eq!(
        topology(Provider::FaceTime, DeviceKind::MacBook),
        Topology::P2P
    );
    assert_eq!(
        topology(Provider::FaceTime, DeviceKind::VisionPro),
        Topology::Sfu
    );
}

/// §4.2: "their servers are primarily used for data forwarding" — uplink
/// and downlink symmetry in a 2-party relayed session.
#[test]
fn finding_servers_only_forward() {
    let sf = cities::by_name("San Francisco, CA").unwrap();
    let nyc = cities::by_name("New York, NY").unwrap();
    let mut cfg = SessionConfig::two_party(
        Provider::FaceTime,
        (DeviceKind::VisionPro, sf),
        (DeviceKind::VisionPro, nyc),
        41,
    );
    cfg.duration = SimDuration::from_secs(8);
    let out = SessionRunner::new(cfg).run();
    let a = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
    let up = a.uplink_rate().as_mbps_f64();
    let down = a.downlink_rate().as_mbps_f64();
    // What goes up (my persona) comes down (their persona): same codec,
    // same rate, ±15%.
    assert!((up - down).abs() / up < 0.15, "up {up} vs down {down}");
}
