//! Property tests for the sharded conservative-PDES fleet:
//!
//! 1. **Shard-count invariance** — the rendered fleet artifact must be
//!    byte-identical (same FNV-1a 64 digest) at 1/2/8 shards crossed with
//!    1/4/8 worker threads. This is the load-bearing guarantee behind
//!    golden checksums at fleet scale: the partition and the pool size
//!    are pure performance knobs.
//! 2. **Causality safety** — with the invariant sanitizer forced on, the
//!    engine's `shard/causality` checks (every cross-shard envelope
//!    delivered no earlier than its send time plus the lookahead, and
//!    strictly after the window it was sent in) and the fleet's
//!    participant-conservation identity must record zero violations.
//!
//! Every test takes `par::override_guard` so the process-global thread
//! override is never raced within this binary.

use visionsim::core::{par, sanitizer};
use visionsim::experiments::fleet::{run_with, Fleet};
use visionsim::experiments::harness::fnv1a64;
use visionsim::vca::fleet::FleetConfig;

/// Render the smoke-scale fleet artifact at a given shard count and
/// digest the bytes.
fn digest(seed: u64, shards: usize) -> u64 {
    let fleet = Fleet {
        outcome: run_with(&FleetConfig::smoke(seed), shards),
        floors: (0, 0),
    };
    fnv1a64(format!("{fleet}").as_bytes())
}

#[test]
fn fleet_artifact_is_invariant_across_shard_and_thread_counts() {
    let _guard = par::override_guard();
    par::set_threads(Some(1));
    let baseline = digest(2024, 1);
    for shards in [1usize, 2, 8] {
        for threads in [1usize, 4, 8] {
            par::set_threads(Some(threads));
            let d = digest(2024, shards);
            assert_eq!(
                d, baseline,
                "fleet artifact diverged at {shards} shards x {threads} threads"
            );
        }
    }
    par::set_threads(None);
}

#[test]
fn fleet_artifact_digests_differ_across_seeds() {
    // Guard against the invariance test passing vacuously (e.g. an
    // artifact that renders the same regardless of the simulation).
    let _guard = par::override_guard();
    par::set_threads(Some(2));
    assert_ne!(digest(1, 2), digest(2, 2), "seed must reach the artifact");
    par::set_threads(None);
}

#[test]
fn causality_and_conservation_hold_under_the_sanitizer() {
    let _guard = par::override_guard();
    sanitizer::force(Some(true));
    sanitizer::reset();
    for shards in [2usize, 8] {
        par::set_threads(Some(4));
        let out = run_with(&FleetConfig::smoke(5), shards);
        assert!(
            out.messages > 0,
            "{shards} shards: no cross-shard envelopes were exchanged, \
             the causality check never ran"
        );
    }
    let violations = sanitizer::total();
    let detail = sanitizer::take();
    sanitizer::force(None);
    sanitizer::reset();
    par::set_threads(None);
    assert_eq!(
        violations, 0,
        "sanitizer recorded causality/conservation violations: {detail:?}"
    );
}
