//! The allocation-regression gate.
//!
//! The zero-copy refactor's whole point is that steady-state forwarding
//! performs no per-hop heap work: payloads are `Arc<[u8]>` allocated once
//! at frame emission, routes are cached `Arc<[LinkId]>` slices, in-flight
//! state lives in a recycled slab, and tap records are inline `Copy`
//! values. This test pins that property with a counting global allocator
//! so a future "just clone it here" regression fails CI instead of
//! silently costing a malloc per packet per hop.
//!
//! Methodology: build a forwarding chain, run a warm-up burst so every
//! `Vec` in the datapath (slab, free list, queue heap, inboxes, tap
//! storage) reaches its high-water mark, then measure the allocation
//! delta across a second identical burst. The budget is
//! [`PER_HOP_ALLOC_BUDGET`] per traversed hop plus a flat slack for
//! inbox/drain bookkeeping — far below the several-allocations-per-hop
//! cost of the pre-refactor owned-`Vec` datapath.

//! Every test here holds `par::override_guard()`: the allocation counter
//! is process-global, so two tests measuring deltas concurrently would
//! pollute each other — and the tracing variant flips the process-global
//! `trace`/`metrics` force switches.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use visionsim_core::{metrics, par, trace};
use visionsim_core::time::{SimDuration, SimTime};
use visionsim_geo::coords::GeoPoint;
use visionsim_net::link::LinkConfig;
use visionsim_net::network::{Network, NodeId, PER_HOP_ALLOC_BUDGET};
use visionsim_net::packet::PortPair;

/// Counts every heap allocation made by the process.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

const HOPS: usize = 8;
const BATCH: usize = 32;

fn chain(hops: usize, tapped: bool) -> (Network, NodeId, NodeId) {
    let mut net = Network::new(7);
    let nodes: Vec<NodeId> = (0..=hops)
        .map(|i| net.add_node(&format!("n{i}"), "gate", GeoPoint::new(37.0, -122.0 + i as f64)))
        .collect();
    for w in nodes.windows(2) {
        net.add_duplex(w[0], w[1], LinkConfig::core(SimDuration::from_micros(100)));
    }
    if tapped {
        for &n in &nodes {
            net.add_tap(n);
        }
    }
    (net, nodes[0], nodes[hops])
}

/// Send `BATCH` copies of `payload` down the chain, run them to delivery,
/// and drain the destination inbox (plus taps when present).
fn burst(net: &mut Network, src: NodeId, dst: NodeId, payload: &Arc<[u8]>, taps: usize) -> usize {
    for i in 0..BATCH {
        net.send(src, dst, PortPair::new(5_000, 6_000 + i as u16), payload.clone());
    }
    net.run_until(net.now() + SimDuration::from_millis(10));
    let got = net.poll_delivered(dst).len();
    for t in 0..taps {
        net.take_tap_records(visionsim_net::tap::TapId(t));
    }
    got
}

/// The no-tap steady-state measurement, shared by the tracing-off and
/// tracing-on gates: warm up, then return the allocation delta of one
/// additional burst.
fn warmed_forwarding_delta() -> usize {
    let (mut net, src, dst) = chain(HOPS, false);
    let payload: Arc<[u8]> = vec![0xEEu8; 1_200].into();

    // Warm-up: grows the flight slab, queue heap, route cache, inboxes
    // and the destination drain vector to their steady-state capacity
    // (and, with tracing on, the preallocated event ring, the interned
    // site table, and the metrics registrations).
    for _ in 0..4 {
        assert_eq!(burst(&mut net, src, dst, &payload, 0), BATCH);
    }

    let before = allocations();
    let delivered = burst(&mut net, src, dst, &payload, 0);
    let delta = allocations() - before;
    assert_eq!(delivered, BATCH);
    delta
}

/// Budget for the no-tap burst: forwarding machinery itself must be
/// allocation-free; this covers amortized growth of reused containers plus
/// a flat slack for the drain `collect` in `poll_delivered`.
const NO_TAP_BUDGET: usize = PER_HOP_ALLOC_BUDGET * HOPS * BATCH / 8 + 16;

#[test]
fn warmed_forwarding_is_allocation_free_per_hop() {
    let _guard = par::override_guard();
    trace::force(Some(false));
    metrics::force(Some(false));
    let delta = warmed_forwarding_delta();
    trace::force(None);
    metrics::force(None);
    assert!(
        delta <= NO_TAP_BUDGET,
        "warmed no-tap burst allocated {delta} times \
         ({BATCH} packets x {HOPS} hops, budget {NO_TAP_BUDGET}); \
         the zero-copy fast path regressed"
    );
}

#[test]
fn warmed_forwarding_stays_allocation_free_with_tracing_on() {
    let _guard = par::override_guard();
    trace::force(Some(true));
    metrics::force(Some(true));
    let delta = warmed_forwarding_delta();
    trace::force(None);
    metrics::force(None);
    trace::reset();
    // The flight recorder records into a preallocated ring and bumps
    // preregistered atomics: turning it on must not add a single
    // allocation to the per-hop budget.
    assert!(
        delta <= NO_TAP_BUDGET,
        "warmed no-tap burst with tracing on allocated {delta} times \
         (budget {NO_TAP_BUDGET}); the flight recorder allocates in steady state"
    );
}

#[test]
fn tap_observation_stays_within_per_hop_budget() {
    let _guard = par::override_guard();
    trace::force(Some(false));
    metrics::force(Some(false));
    let taps = HOPS + 1;
    let (mut net, src, dst) = chain(HOPS, true);
    let payload: Arc<[u8]> = vec![0x7Au8; 1_200].into();

    for _ in 0..4 {
        assert_eq!(burst(&mut net, src, dst, &payload, taps), BATCH);
    }

    let before = allocations();
    let delivered = burst(&mut net, src, dst, &payload, taps);
    let delta = allocations() - before;
    assert_eq!(delivered, BATCH);

    // Tap records are inline `Copy` values, but draining with
    // `take_tap_records` swaps in fresh `Vec`s, so each record push can
    // hit amortized growth: budget one allocation per observed hop.
    let observations = taps * BATCH;
    let budget = PER_HOP_ALLOC_BUDGET * observations + 32;
    trace::force(None);
    metrics::force(None);
    assert!(
        delta <= budget,
        "warmed tapped burst allocated {delta} times \
         ({observations} observations, budget {budget}); \
         tap capture is no longer O(1)-allocation per record"
    );
}

#[test]
fn relaying_a_delivered_payload_allocates_nothing_for_the_bytes() {
    // Not a delta measurement, but it allocates freely — hold the guard so
    // it cannot run concurrently with one.
    let _guard = par::override_guard();
    // SFU-style relay: deliver once, re-send the same payload to a second
    // destination. The payload bytes must be shared, not copied.
    let (mut net, src, mid) = chain(2, false);
    let payload: Arc<[u8]> = vec![0x42u8; 4_096].into();
    net.send(src, mid, PortPair::new(1, 2), payload.clone());
    net.run_until(SimTime::from_millis(5));
    let d = net.poll_delivered(mid).pop().expect("delivered");
    assert!(
        Arc::ptr_eq(&d.packet.payload, &payload),
        "delivery must share the sent allocation"
    );
}
