//! The chaos engine as an application: inject one fault of each kind
//! into a live spatial-persona call and narrate what the session does —
//! when the degradation ladder drops to the 2D fallback, when it climbs
//! back, and where the SFU failover lands.
//!
//! ```sh
//! cargo run --release --example chaos_drill
//! ```

use visionsim::core::time::{SimDuration, SimTime};
use visionsim::core::units::DataRate;
use visionsim::device::device::DeviceKind;
use visionsim::geo::{cities, sites::Provider};
use visionsim::net::fault::{FaultPlan, GeConfig};
use visionsim::vca::adaptation::PersonaMode;
use visionsim::vca::session::{SessionConfig, SessionRunner};

fn main() {
    let sf = cities::by_name("San Francisco, CA").expect("registry city");
    let nyc = cities::by_name("New York, NY").expect("registry city");
    let at = SimTime::from_millis(4_000);

    let drills: Vec<(&str, FaultPlan)> = vec![
        (
            "2 s severe burst loss (Gilbert–Elliott, 90% in Bad)",
            FaultPlan::burst_loss(
                at,
                GeConfig {
                    good_to_bad: 0.05,
                    bad_to_good: 0.02,
                    loss_good: 0.0,
                    loss_bad: 0.9,
                },
                SimDuration::from_secs(2),
            ),
        ),
        (
            "3 s rate cliff to 150 kbps",
            FaultPlan::rate_cliff(at, DataRate::from_kbps(150), SimDuration::from_secs(3)),
        ),
        (
            "3 s delay spike of +1 s",
            FaultPlan::delay_spike(at, SimDuration::from_secs(1), SimDuration::from_secs(3)),
        ),
        (
            "2 s radio flap (link fully down)",
            FaultPlan::flap(at, SimDuration::from_secs(2)),
        ),
        (
            "SFU site dies (1 s detect + 0.5 s reconnect)",
            FaultPlan::server_outage(at, SimDuration::from_secs(1), SimDuration::from_millis(500)),
        ),
    ];

    println!("FaceTime spatial call, SF <-> NYC, 14 s; one fault at t=4 s.\n");
    for (i, (label, plan)) in drills.into_iter().enumerate() {
        let mut cfg = SessionConfig::two_party(
            Provider::FaceTime,
            (DeviceKind::VisionPro, sf),
            (DeviceKind::VisionPro, nyc),
            40 + i as u64,
        );
        cfg.duration = SimDuration::from_secs(14);
        cfg.fault_plans = vec![(0, plan)];
        let out = SessionRunner::new(cfg).run();

        println!("-- {label}");
        // Walk the receiver's mode log and report transitions.
        let mut last = PersonaMode::Spatial;
        for &(t, mode) in &out.mode_log[1] {
            if mode != last {
                let what = match mode {
                    PersonaMode::Spatial => "recovered: spatial persona restored",
                    PersonaMode::TwoDFallback => "degraded: fell back to 2D tile",
                };
                println!("   t={:>5.1}s  {what}", t.as_secs_f64());
                last = mode;
            }
        }
        for &(t, ref site) in &out.failovers {
            println!(
                "   t={:>5.1}s  reattached to SFU site {site}",
                t.as_secs_f64()
            );
        }
        println!(
            "   spatial {:.0}% of the call, {} fallback(s), {} PLI sent, {} keyframes forced\n",
            out.spatial_fraction(1) * 100.0,
            out.fallbacks[1],
            out.pli_sent[1],
            out.keyframes_forced[0],
        );
    }

    println!(
        "Faults degrade the call — the persona drops to its 2D fallback,\n\
         the encoder re-syncs with forced keyframes, the session moves to a\n\
         live SFU site — but the session itself never aborts."
    );
}
