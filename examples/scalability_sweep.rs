//! The Figure 6 scalability sweep as an application: grow a FaceTime
//! spatial session from 2 to 5 Vision Pro users and watch rendering load
//! approach the 11.1 ms / 90 FPS deadline while downlink bandwidth climbs
//! linearly — the paper's explanation for the five-persona cap.
//!
//! ```sh
//! cargo run --release --example scalability_sweep
//! ```

use visionsim::experiments::figure6;
use visionsim::render::counters::FRAME_DEADLINE;

fn main() {
    println!("FaceTime spatial sessions, 2 → 5 Vision Pro users (20 s each)...\n");
    let fig = figure6::run(20, 2024);
    println!("{fig}");

    println!("\nHeadroom against the {:.1} ms frame deadline:", FRAME_DEADLINE.as_millis_f64());
    for row in &fig.rows {
        let headroom = FRAME_DEADLINE.as_millis_f64() - row.gpu_ms.p95;
        let bar_len = (row.gpu_ms.p95 / FRAME_DEADLINE.as_millis_f64() * 40.0) as usize;
        println!(
            "  {} users: GPU p95 {:>5.2} ms  [{}{}] {:.1} ms left",
            row.users,
            row.gpu_ms.p95,
            "#".repeat(bar_len.min(40)),
            " ".repeat(40usize.saturating_sub(bar_len)),
            headroom
        );
    }
    println!(
        "\nAt five users the 95th-percentile GPU time is within ~2 ms of the\n\
         deadline — the likely reason FaceTime caps spatial personas at five\n\
         (§4.5). Downlink grows linearly because the SFU only forwards."
    );
}
