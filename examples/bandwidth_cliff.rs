//! The §4.3 rate-adaptation experiment as an application: progressively
//! strangle one user's uplink with the `tc tbf` analogue and watch the
//! spatial persona fall off its ~700 kbps cliff while adaptive 2D video
//! degrades gracefully.
//!
//! ```sh
//! cargo run --release --example bandwidth_cliff
//! ```

use visionsim::core::time::SimDuration;
use visionsim::core::units::DataRate;
use visionsim::device::device::DeviceKind;
use visionsim::geo::{cities, sites::Provider};
use visionsim::vca::session::{SessionConfig, SessionRunner};

fn main() {
    let sf = cities::by_name("San Francisco, CA").expect("registry city");
    let nyc = cities::by_name("New York, NY").expect("registry city");

    println!("Constraining U1's uplink during a spatial-persona FaceTime call");
    println!("vs an adaptive 2D Webex call (15 s sessions):\n");
    println!(
        "{:>14} | {:>24} | {:>22}",
        "uplink limit", "FaceTime spatial persona", "Webex encoder quality"
    );
    println!("{}", "-".repeat(68));

    for kbps in [3_000u64, 1_500, 1_000, 800, 650, 500, 300] {
        let limit = DataRate::from_kbps(kbps);

        let mut cfg = SessionConfig::two_party(
            Provider::FaceTime,
            (DeviceKind::VisionPro, sf),
            (DeviceKind::VisionPro, nyc),
            9 ^ kbps,
        );
        cfg.duration = SimDuration::from_secs(15);
        cfg.uplink_limits = vec![(0, limit)];
        let spatial = SessionRunner::new(cfg).run();
        let up_frac = spatial.availability_fraction(1);
        let spatial_str = if up_frac > 0.8 {
            format!("available ({:.0}%)", up_frac * 100.0)
        } else {
            format!("\"poor connection\" ({:.0}%)", up_frac * 100.0)
        };

        let mut cfg = SessionConfig::two_party(
            Provider::Webex,
            (DeviceKind::VisionPro, sf),
            (DeviceKind::MacBook, nyc),
            11 ^ kbps,
        );
        cfg.duration = SimDuration::from_secs(15);
        cfg.uplink_limits = vec![(0, limit)];
        let webex = SessionRunner::new(cfg).run();

        println!(
            "{:>14} | {:>24} | {:>21.0}%",
            format!("{limit}"),
            spatial_str,
            webex.final_quality[0] * 100.0
        );
    }

    println!(
        "\nSemantic communication has no quality ladder: below the stream's\n\
         natural rate the persona simply disappears (§4.3). The 2D encoder\n\
         walks its resolution ladder down instead."
    );
}
