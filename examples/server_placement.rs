//! Server infrastructure study (Table 1 + the §4.1 proposed fix): measure
//! RTT from the three regional test users to every provider site, then
//! quantify what geo-distributed serving would buy an intercontinental
//! session.
//!
//! ```sh
//! cargo run --release --example server_placement
//! ```

use visionsim::experiments::{ablations, table1};

fn main() {
    println!("Probing every provider site from the W / M / E test users");
    println!("(TCP-ping analogue over the simulated network, 10 probes/pair)...\n");
    let table = table1::run(10, 2024);
    println!("{table}");
    println!("max σ across the matrix: {:.2} ms (paper: <7 ms)\n", table.max_std());

    println!("Why a single initiator-near server hurts (§4.1):");
    println!("an Eastern-US initiator pins SF/Frankfurt/Tokyo participants to a");
    println!("US-East server. The paper's proposed fix attaches each client to");
    println!("its nearest site over a private backbone:\n");
    let placement = ablations::placement();
    println!(
        "  nearest-to-initiator : worst client→server RTT = {:>6.1} ms",
        placement.initiator_worst_rtt_ms
    );
    println!(
        "  geo-distributed      : worst client→server RTT = {:>6.1} ms",
        placement.geo_worst_rtt_ms
    );
    println!(
        "  improvement          : {:.1}x",
        placement.initiator_worst_rtt_ms / placement.geo_worst_rtt_ms
    );
}
