//! Passive traffic analysis end to end: run a session, export the AP
//! capture as a real pcap file, and estimate QoE from packet timing alone
//! — the §5-suggested methodology for encrypted telepresence traffic.
//!
//! ```sh
//! cargo run --release --example passive_analysis
//! # then: wireshark /tmp/visionsim_u1_ap.pcap
//! ```

use visionsim::capture::{pcap, qoe};
use visionsim::core::time::SimDuration;
use visionsim::core::units::DataRate;
use visionsim::device::device::DeviceKind;
use visionsim::geo::{cities, sites::Provider};
use visionsim::vca::session::{SessionConfig, SessionRunner};

fn main() {
    let sf = cities::by_name("San Francisco, CA").expect("registry city");
    let nyc = cities::by_name("New York, NY").expect("registry city");

    // A clean session and a throttled one, side by side.
    for (label, limit) in [("clean", None), ("throttled to 500 kbps", Some(500u64))] {
        let mut cfg = SessionConfig::two_party(
            Provider::FaceTime,
            (DeviceKind::VisionPro, sf),
            (DeviceKind::VisionPro, nyc),
            1_337,
        );
        cfg.duration = SimDuration::from_secs(15);
        if let Some(kbps) = limit {
            cfg.uplink_limits = vec![(0, DataRate::from_kbps(kbps))];
        }
        let out = SessionRunner::new(cfg).run();

        // U2's downlink media flow from U1 (the possibly-throttled one).
        let media: Vec<_> = out.taps[1]
            .iter()
            .filter(|r| r.dst == out.client_addrs[1] && r.ports.src == 5_000)
            .cloned()
            .collect();
        let estimate = qoe::estimate(media.iter(), 90.0);
        println!("U1 → U2 persona stream ({label}):");
        println!(
            "  inferred {} frames at {:.1} FPS, {} stall(s), worst gap {:.0} ms",
            estimate.frames, estimate.fps, estimate.stalls, estimate.worst_gap_ms
        );
        println!("  passive QoE grade: {:.1}/5.0\n", estimate.grade(90.0));

        if limit.is_none() {
            let image = pcap::to_pcap(out.taps[0].iter());
            let path = std::env::temp_dir().join("visionsim_u1_ap.pcap");
            std::fs::write(&path, &image).expect("writable temp dir");
            println!(
                "Wrote U1's full AP capture ({} packets, {} bytes) to {}",
                pcap::parse_pcap(&image).map(|p| p.len()).unwrap_or(0),
                image.len(),
                path.display()
            );
            println!("Open it in Wireshark — it is a real libpcap file.\n");
        }
    }
}
