//! The §4.3 detective story as an application: which of the three 3D
//! delivery strategies does the spatial persona use? Reproduce all three
//! pieces of evidence —
//!
//! 1. direct mesh streaming would need ~two orders of magnitude more
//!    bandwidth than observed;
//! 2. display latency is independent of network delay, ruling out
//!    sender-side pre-rendered video;
//! 3. a compressed 74-keypoint stream matches the observed rate almost
//!    exactly — semantic communication.
//!
//! ```sh
//! cargo run --release --example dissect_delivery
//! ```

use visionsim::experiments::{display_latency, keypoint_rate, mesh_streaming};

fn main() {
    println!("What is being delivered for the spatial persona? (observed: ~0.67 Mbps)\n");

    println!("Hypothesis 1 — direct 3D mesh streaming:");
    let mesh = mesh_streaming::run(6, 2024);
    print!("{mesh}");
    println!("  ⇒ rejected: the observed stream is ~{:.0}x too small.\n", mesh.gap_factor());

    println!("Hypothesis 2 — sender-side pre-rendered 2D video:");
    let latency = display_latency::run(200, 2024);
    println!("{latency}");
    println!(
        "  ⇒ rejected: the measured difference stays <16 ms (worst {:.1} ms)\n\
         \x20   at every injected delay; remote rendering would track the RTT.\n",
        latency.worst_local_ms()
    );

    println!("Hypothesis 3 — semantic communication (keypoints):");
    let kp = keypoint_rate::run(2_000, 2024);
    print!("{kp}");
    println!(
        "  ⇒ supported: the keypoint stream reproduces the observed rate.\n\
         \x20   The persona mesh is exchanged once at setup and deformed\n\
         \x20   locally from 74 tracked keypoints per frame."
    );
}
