//! Quickstart: run one immersive telepresence session and read the same
//! measurements the paper takes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use visionsim::capture::analysis::CaptureAnalysis;
use visionsim::capture::log::format_capture;
use visionsim::core::time::SimDuration;
use visionsim::device::device::DeviceKind;
use visionsim::geo::{cities, sites::Provider};
use visionsim::vca::session::{SessionConfig, SessionRunner};

fn main() {
    // U1 in San Francisco and U2 in New York, both wearing Vision Pro,
    // on a FaceTime call — the configuration that gets spatial personas.
    let mut cfg = SessionConfig::two_party(
        Provider::FaceTime,
        (
            DeviceKind::VisionPro,
            cities::by_name("San Francisco, CA").expect("registry city"),
        ),
        (
            DeviceKind::VisionPro,
            cities::by_name("New York, NY").expect("registry city"),
        ),
        42,
    );
    cfg.duration = SimDuration::from_secs(20);

    println!("Running a 20 s two-party FaceTime session (both on Vision Pro)...\n");
    let outcome = SessionRunner::new(cfg).run();

    println!("persona type : {:?}", outcome.persona_type);
    println!("topology     : {:?}", outcome.topology);
    if let Some(a) = &outcome.assignment {
        println!(
            "server       : {} {} ({})",
            a.attachments[0].provider, a.attachments[0].label, a.attachments[0].city.name
        );
    }

    // The paper's vantage: Wireshark at U1's AP.
    let analysis = CaptureAnalysis::new(outcome.taps[0].iter(), outcome.client_addrs[0]);
    println!("\nU1 AP capture:");
    println!("  protocol  : {:?}", analysis.dominant_protocol());
    println!("  uplink    : {}", analysis.uplink_rate());
    println!("  downlink  : {}", analysis.downlink_rate());
    println!("  peers     :");
    for p in analysis.peers(&outcome.geodb) {
        println!(
            "    {} — {} ({:?}), {} exchanged",
            p.addr,
            p.org.as_deref().unwrap_or("unknown"),
            p.region,
            p.bytes
        );
    }

    // Rendering counters (the RealityKit analogue).
    let gpu = outcome.counters[0].gpu_boxplot();
    let tris = outcome.counters[0].triangles_boxplot();
    println!("\nU1 rendering:");
    println!("  GPU ms/frame : {gpu}");
    println!("  triangles    : {tris}");
    println!(
        "  persona availability: {:.0}%",
        outcome.availability_fraction(0) * 100.0
    );

    // First packets of the trace, tshark-style.
    println!("\nFirst 8 captured packets at U1's AP:");
    println!("{}", format_capture(outcome.taps[0].iter().take(8)));
}
