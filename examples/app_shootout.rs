//! The Figure 4 scenario as an application: compare all four VCAs (plus
//! FaceTime's two persona modes) on the same two-party call and print the
//! paper's throughput comparison.
//!
//! ```sh
//! cargo run --release --example app_shootout
//! ```

use visionsim::capture::analysis::CaptureAnalysis;
use visionsim::core::time::SimDuration;
use visionsim::device::device::DeviceKind;
use visionsim::geo::{cities, sites::Provider};
use visionsim::transport::classify::WireProtocol;
use visionsim::vca::session::{SessionConfig, SessionRunner};

fn main() {
    let sf = cities::by_name("San Francisco, CA").expect("registry city");
    let nyc = cities::by_name("New York, NY").expect("registry city");

    println!("Two-party telepresence, U1 (Vision Pro, SF) ↔ U2 (NYC), 20 s each:\n");
    println!(
        "{:<38} {:>10} {:>10} {:>12} {:>8}",
        "configuration", "uplink", "downlink", "protocol", "topology"
    );

    let configs: [(&str, Provider, DeviceKind); 5] = [
        ("FaceTime spatial (U2: Vision Pro)", Provider::FaceTime, DeviceKind::VisionPro),
        ("FaceTime 2D (U2: MacBook)", Provider::FaceTime, DeviceKind::MacBook),
        ("Zoom (U2: MacBook)", Provider::Zoom, DeviceKind::MacBook),
        ("Webex (U2: MacBook)", Provider::Webex, DeviceKind::MacBook),
        ("Teams (U2: MacBook)", Provider::Teams, DeviceKind::MacBook),
    ];

    for (label, provider, peer) in configs {
        let mut cfg = SessionConfig::two_party(
            provider,
            (DeviceKind::VisionPro, sf),
            (peer, nyc),
            7,
        );
        cfg.duration = SimDuration::from_secs(20);
        let out = SessionRunner::new(cfg).run();
        let a = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
        let proto = match a.dominant_protocol() {
            WireProtocol::Quic => "QUIC".to_string(),
            WireProtocol::Rtp(pt) => format!("RTP pt={}", pt.code()),
            WireProtocol::Rtcp => "RTCP".to_string(),
            WireProtocol::Unknown => "?".to_string(),
        };
        println!(
            "{:<38} {:>10} {:>10} {:>12} {:>8?}",
            label,
            format!("{}", a.uplink_rate()),
            format!("{}", a.downlink_rate()),
            proto,
            out.topology,
        );
    }

    println!(
        "\nThe counter-intuitive headline of the paper: the 3D spatial persona\n\
         needs *less* bandwidth than every 2D persona, because FaceTime ships\n\
         74 tracked keypoints (semantic communication) instead of video."
    );
}
