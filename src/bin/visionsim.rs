//! The `visionsim` command-line interface.
//!
//! ```text
//! visionsim <command> [seed]
//!
//! commands:
//!   table1        Table 1 — server RTT matrix
//!   figure4       Figure 4 — per-app two-party throughput
//!   figure5       Figure 5 — visibility-aware optimizations
//!   figure6       Figure 6 — 2-5 user scalability
//!   delivery      §4.3 — the what-is-being-delivered experiments
//!   protocols     §4.1 — protocol/topology matrix
//!   discovery     §4.1 — server-fleet discovery from randomized sessions
//!   m2p           motion-to-photon latency vs server placement
//!   extensions    FEC + beyond-five-users extensions
//!   session       run one spatial session and print its measurements
//!   all           everything above, in paper order
//!   serve         run the live service (see `serve --help`)
//!   ctl           send one control command to a running service
//!   scrape        HTTP GET a running service's /metrics endpoint
//! ```
//!
//! The optional trailing integer seeds the simulation (default 2024);
//! identical seeds reproduce identical output bit-for-bit. `serve`,
//! `ctl`, and `scrape` take their own arguments instead of a seed.

use visionsim::experiments::*;

fn print_usage() -> ! {
    eprintln!(
        "usage: visionsim <table1|figure4|figure5|figure6|delivery|protocols|discovery|m2p|extensions|session|all> [seed]\n       visionsim serve [--speed N] [--control ADDR] [--metrics ADDR] [--trace PATH] [--run-secs S] [--pacing-ms MS]\n       visionsim ctl <ADDR> <command...>\n       visionsim scrape <ADDR> [target]"
    );
    std::process::exit(2);
}

/// `visionsim serve`: run the live service until `shutdown` (or
/// `--run-secs`). Prints `serve control=<addr> metrics=<addr> speed=<n>`
/// once the sockets are bound; scripts parse the auto-assigned ports.
fn run_serve(args: &[String]) {
    use visionsim::service::server::{serve, ServeOptions};

    let mut opts = ServeOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("serve: {what} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--speed" => {
                opts.speed = value("--speed").parse().unwrap_or_else(|_| {
                    eprintln!("serve: bad --speed");
                    std::process::exit(2);
                })
            }
            "--control" => opts.control_addr = value("--control"),
            "--metrics" => opts.metrics_addr = value("--metrics"),
            "--trace" => opts.trace_path = Some(value("--trace").into()),
            "--run-secs" => {
                let secs: u64 = value("--run-secs").parse().unwrap_or_else(|_| {
                    eprintln!("serve: bad --run-secs");
                    std::process::exit(2);
                });
                opts.max_wall = Some(std::time::Duration::from_secs(secs));
            }
            "--pacing-ms" => {
                let ms: u64 = value("--pacing-ms").parse().unwrap_or_else(|_| {
                    eprintln!("serve: bad --pacing-ms");
                    std::process::exit(2);
                });
                opts.pacing = std::time::Duration::from_millis(ms.max(1));
            }
            other => {
                eprintln!("serve: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = serve(opts) {
        eprintln!("serve: {e}");
        std::process::exit(1);
    }
}

fn parse_addr(addr: &str) -> std::net::SocketAddr {
    addr.parse().unwrap_or_else(|_| {
        eprintln!("bad address {addr:?} (expected host:port)");
        std::process::exit(2);
    })
}

/// `visionsim ctl <addr> <command...>`: one protocol round-trip.
fn run_ctl(args: &[String]) {
    use visionsim::service::server::control_roundtrip;
    let (addr, words) = match args.split_first() {
        Some(split) if !split.1.is_empty() => split,
        _ => {
            eprintln!("usage: visionsim ctl <ADDR> <command...>");
            std::process::exit(2);
        }
    };
    match control_roundtrip(&parse_addr(addr), &words.join(" ")) {
        Ok(reply) => {
            println!("{reply}");
            if reply.starts_with("err ") {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("ctl: {e}");
            std::process::exit(1);
        }
    }
}

/// `visionsim scrape <addr> [target]`: print the HTTP response body.
fn run_scrape(args: &[String]) {
    use visionsim::service::server::scrape;
    let Some(addr) = args.first() else {
        eprintln!("usage: visionsim scrape <ADDR> [target]");
        std::process::exit(2);
    };
    let target = args.get(1).map(String::as_str).unwrap_or("/metrics");
    match scrape(&parse_addr(addr), target) {
        Ok(body) => print!("{body}"),
        Err(e) => {
            eprintln!("scrape: {e}");
            std::process::exit(1);
        }
    }
}

fn run_session(seed: u64) {
    use visionsim::capture::analysis::CaptureAnalysis;
    use visionsim::core::time::SimDuration;
    use visionsim::device::device::DeviceKind;
    use visionsim::geo::{cities, sites::Provider};
    use visionsim::vca::session::{SessionConfig, SessionRunner};

    let mut cfg = SessionConfig::two_party(
        Provider::FaceTime,
        (
            DeviceKind::VisionPro,
            cities::by_name("San Francisco, CA").expect("registry city"),
        ),
        (
            DeviceKind::VisionPro,
            cities::by_name("New York, NY").expect("registry city"),
        ),
        seed,
    );
    cfg.duration = SimDuration::from_secs(20);
    let out = SessionRunner::new(cfg).run();
    let analysis = CaptureAnalysis::new(out.taps[0].iter(), out.client_addrs[0]);
    println!("FaceTime AVP↔AVP, SF↔NYC, 20 s (seed {seed}):");
    println!("  persona   : {:?} over {:?}", out.persona_type, analysis.dominant_protocol());
    println!("  uplink    : {}", analysis.uplink_rate());
    println!("  downlink  : {}", analysis.downlink_rate());
    println!("  GPU       : {}", out.counters[0].gpu_boxplot());
    println!("  triangles : {}", out.counters[0].triangles_boxplot());
    println!(
        "  available : {:.0}%",
        out.availability_fraction(0) * 100.0
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(command) = args.get(1) else {
        print_usage();
    };
    match command.as_str() {
        "serve" => return run_serve(&args[2..]),
        "ctl" => return run_ctl(&args[2..]),
        "scrape" => return run_scrape(&args[2..]),
        _ => {}
    }
    let seed: u64 = args
        .get(2)
        .map(|s| s.parse().unwrap_or_else(|_| print_usage()))
        .unwrap_or(2024);

    let run_one = |cmd: &str| match cmd {
        "table1" => {
            let t = table1::run(10, seed);
            println!("{t}");
            println!("max σ = {:.2} ms (paper: <7 ms)", t.max_std());
        }
        "figure4" => println!("{}", figure4::run(3, 30, seed)),
        "figure5" => println!("{}", figure5::run(500, seed)),
        "figure6" => println!("{}", figure6::run(30, seed)),
        "delivery" => {
            println!("{}", mesh_streaming::run(6, seed));
            println!("{}", display_latency::run(500, seed));
            println!("{}", keypoint_rate::run(2_000, seed));
            println!("{}", rate_adaptation::run(15, seed));
        }
        "protocols" => println!("{}", protocols::run(10, seed)),
        "discovery" => println!("{}", discovery::run(24, 5, seed)),
        "m2p" => println!("{}", motion_to_photon::run(15, seed)),
        "extensions" => {
            println!(
                "{}",
                extensions::format_fec(&extensions::fec_under_loss(500, 2_000, seed))
            );
            println!(
                "{}",
                extensions::format_beyond_five(&extensions::beyond_five_users(15, seed))
            );
        }
        "session" => run_session(seed),
        _ => print_usage(),
    };

    if command == "all" {
        for cmd in [
            "table1",
            "figure4",
            "delivery",
            "figure5",
            "protocols",
            "discovery",
            "m2p",
            "figure6",
            "extensions",
        ] {
            println!("=== {cmd} ===");
            run_one(cmd);
        }
    } else {
        run_one(command);
    }
}
