//! # visionsim
//!
//! A simulation and measurement framework that reproduces, end to end, the
//! measurement study *"A First Look at Immersive Telepresence on Apple
//! Vision Pro"* (ACM IMC 2024): the devices, sensing and persona codecs,
//! the four videoconferencing applications' protocol stacks, the wide-area
//! network between them, the AP-side capture vantage point, and the
//! analysis tooling — all as deterministic, seedable Rust.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | what it is |
//! |---|---|---|
//! | [`core`] | `visionsim-core` | virtual time, events, RNG, statistics |
//! | [`geo`] | `visionsim-geo` | geodesy, regions, server sites, latency model |
//! | [`net`] | `visionsim-net` | discrete-event packet network + `tc`-style impairments |
//! | [`transport`] | `visionsim-transport` | RTP & QUIC-like framing, ChaCha20, classifier |
//! | [`compress`] | `visionsim-compress` | LZ77+range coder (LZMA-style), rANS |
//! | [`mesh`] | `visionsim-mesh` | persona meshes, LOD, Draco-style codec |
//! | [`sensor`] | `visionsim-sensor` | keypoint schemas + synthetic face/hand motion |
//! | [`semantic`] | `visionsim-semantic` | semantic-communication codec & reconstruction |
//! | [`render`] | `visionsim-render` | visibility pipeline + calibrated frame costs |
//! | [`device`] | `visionsim-device` | device models, cameras, display latency |
//! | [`vca`] | `visionsim-vca` | FaceTime/Zoom/Webex/Teams models + session engine |
//! | [`capture`] | `visionsim-capture` | Wireshark-at-the-AP flow analysis |
//! | [`experiments`] | `visionsim-experiments` | one runner per paper table/figure |
//! | [`service`] | `visionsim-service` | live service mode: real-time driver, control plane, Prometheus |
//!
//! ## Quickstart
//!
//! ```
//! use visionsim::vca::session::{SessionConfig, SessionRunner};
//! use visionsim::vca::profile::PersonaType;
//! use visionsim::device::device::DeviceKind;
//! use visionsim::geo::{cities, sites::Provider};
//! use visionsim::capture::analysis::CaptureAnalysis;
//! use visionsim::core::time::SimDuration;
//!
//! // A two-party FaceTime call, both users on Vision Pro.
//! let mut cfg = SessionConfig::two_party(
//!     Provider::FaceTime,
//!     (DeviceKind::VisionPro, cities::by_name("San Francisco, CA").unwrap()),
//!     (DeviceKind::VisionPro, cities::by_name("New York, NY").unwrap()),
//!     42,
//! );
//! cfg.duration = SimDuration::from_secs(5);
//! let outcome = SessionRunner::new(cfg).run();
//! assert_eq!(outcome.persona_type, PersonaType::Spatial);
//!
//! // Analyze U1's AP capture like the paper does with Wireshark.
//! let analysis = CaptureAnalysis::new(outcome.taps[0].iter(), outcome.client_addrs[0]);
//! assert!(analysis.dominant_protocol().is_quic());
//! assert!(analysis.uplink_rate().as_mbps_f64() < 1.5); // semantic, not video
//! ```

pub use visionsim_capture as capture;
pub use visionsim_compress as compress;
pub use visionsim_core as core;
pub use visionsim_device as device;
pub use visionsim_experiments as experiments;
pub use visionsim_geo as geo;
pub use visionsim_mesh as mesh;
pub use visionsim_net as net;
pub use visionsim_render as render;
pub use visionsim_semantic as semantic;
pub use visionsim_sensor as sensor;
pub use visionsim_service as service;
pub use visionsim_transport as transport;
pub use visionsim_vca as vca;
