#!/usr/bin/env bash
# Tier-1 gate: build, full test suite, lints, and the thread-count
# determinism check. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== thread-count determinism =="
cargo test -q --test determinism

echo "== chaos suite at 1 and 4 workers =="
VISIONSIM_THREADS=1 cargo test -q --test fault_injection
VISIONSIM_THREADS=4 cargo test -q --test fault_injection
VISIONSIM_THREADS=1 cargo test -q -p visionsim-experiments resilience
VISIONSIM_THREADS=4 cargo test -q -p visionsim-experiments resilience

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all green"
