#!/usr/bin/env bash
# Tier-1 gate: build, full test suite, lints, and the thread-count
# determinism check. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== thread-count determinism =="
cargo test -q --test determinism

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all green"
