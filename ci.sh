#!/usr/bin/env bash
# Tier-1 gate: build, full test suite, lints, and the thread-count
# determinism check. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== thread-count determinism =="
cargo test -q --test determinism

echo "== chaos suite at 1 and 4 workers =="
VISIONSIM_THREADS=1 cargo test -q --test fault_injection
VISIONSIM_THREADS=4 cargo test -q --test fault_injection
VISIONSIM_THREADS=1 cargo test -q -p visionsim-experiments resilience
VISIONSIM_THREADS=4 cargo test -q -p visionsim-experiments resilience

echo "== sanitizer explicitly on and off =="
# Debug tests default the sanitizer on; exercise both explicit settings on
# the crates that carry check sites (core, net) and the hostile decoders.
VISIONSIM_SANITIZE=1 cargo test -q -p visionsim-core -p visionsim-net -p visionsim-compress -p visionsim-mesh
VISIONSIM_SANITIZE=0 cargo test -q -p visionsim-core -p visionsim-net

echo "== allocation gate: sanitizer on and off =="
# The counting-allocator budgets must hold in both modes — the sanitizer's
# own bookkeeping is not allowed to leak allocations into the datapath.
VISIONSIM_SANITIZE=1 cargo test -q --release --test alloc_gate
VISIONSIM_SANITIZE=0 cargo test -q --release --test alloc_gate

echo "== allocation gate: flight recorder on and off =="
# Same budgets with the trace ring and metrics registry live: recording is
# preallocated-ring + atomics and must not put mallocs on the hot path.
VISIONSIM_TRACE=1 VISIONSIM_METRICS=1 cargo test -q --release --test alloc_gate
VISIONSIM_TRACE=0 VISIONSIM_METRICS=0 cargo test -q --release --test alloc_gate

echo "== allocation gate: batching forced on and off =="
# The batched drain loop (cohort lists, scratch batch, netem verdict
# buffer) must hit the same per-hop budget as the scalar reference once
# its pools are warm.
VISIONSIM_DRAIN=batched cargo test -q --release --test alloc_gate
VISIONSIM_DRAIN=scalar cargo test -q --release --test alloc_gate

echo "== closed-loop congestion: conservation + convergence smoke =="
# The token-bucket shaper must conserve bytes (offered == sent + dropped)
# identically under both drain paths, and the AIMD loop must converge to
# fair shares with receiver-visible drops. The scenario tests pin their
# own drain mode internally; the env var covers the defaults.
VISIONSIM_DRAIN=scalar cargo test -q --release -p visionsim-net --test shaper_conservation
VISIONSIM_DRAIN=batched cargo test -q --release -p visionsim-net --test shaper_conservation
cargo test -q --release -p visionsim-experiments congestion

echo "== failover storms: control-plane resilience =="
# Storm drills with the sanitizer on: the participant-conservation
# identity (attached + reconnecting + abandoned == joined) is checked
# every simulated second in all four scenarios, plus thread-invariance
# of the storms artifact.
VISIONSIM_SANITIZE=1 cargo test -q --release -p visionsim-experiments storms
# The staggered-ServerDown regression (single-slot overwrite bug) and
# the resilience session path, under the sanitizer.
VISIONSIM_SANITIZE=1 cargo test -q --release -p visionsim-vca --lib \
  staggered_server_down_faults_reattach_both_cohorts
VISIONSIM_SANITIZE=1 cargo test -q --release -p visionsim-vca --lib \
  resilience_reconnects_all_participants_after_server_down
# Failover property suite in both drain modes: candidate selection never
# hands out a dead or breaker-open site, and reconnect backoff schedules
# are byte-identical across thread counts. `DrainMode::from_env` is
# cached per process, so the axis needs two runs.
VISIONSIM_DRAIN=scalar cargo test -q --release -p visionsim-vca --test failover_props
VISIONSIM_DRAIN=batched cargo test -q --release -p visionsim-vca --test failover_props

echo "== sharded fleet: causality + shard/thread invariance =="
# The conservative-PDES engine's shard partition and worker-pool size are
# pure performance knobs: the rendered fleet artifact must be
# byte-identical at 1/2/8 shards x 1/4/8 threads, and every cross-shard
# envelope must respect the lookahead (sanitizer-checked).
VISIONSIM_SANITIZE=1 cargo test -q --release --test fleet_props
VISIONSIM_SANITIZE=1 cargo test -q --release -p visionsim-core shard
VISIONSIM_SANITIZE=1 cargo test -q --release -p visionsim-vca --lib fleet
cargo test -q --release -p visionsim-experiments fleet

echo "== fleet artifact: --only + manifest/checksum/resume =="
FLEETDIR=$(mktemp -d)
VISIONSIM_ARTIFACT_DIR="$FLEETDIR" ./target/release/regenerate 2024 --only fleet > /dev/null
test -f "$FLEETDIR/fleet.txt" || { echo "fleet artifact was not written" >&2; exit 1; }
grep -q '"fleet"' "$FLEETDIR/manifest.json" || { echo "manifest lacks the fleet entry" >&2; exit 1; }
grep -q 'peak concurrency' "$FLEETDIR/fleet.txt" || { echo "fleet artifact lacks the concurrency summary" >&2; exit 1; }
# A resumed run must verify the checksum and skip the finished artifact.
# (Captured, not piped: `grep -q` would close the pipe early and the
# writer's SIGPIPE would trip pipefail.)
RESUME_OUT=$(VISIONSIM_ARTIFACT_DIR="$FLEETDIR" ./target/release/regenerate 2024 --only fleet --resume)
echo "$RESUME_OUT" | grep -q 'fleet.*verified' \
  || { echo "resume did not verify the fleet checksum" >&2; exit 1; }
rm -rf "$FLEETDIR"

echo "== bench smoke + regression gate (packet_path, fleet) =="
# Quick pass (few samples) to catch bit-rot in the bench harness and gross
# regressions; results go to a scratch file so the committed BENCH.json
# numbers (full 10-sample runs) are not overwritten. Any benchmark whose
# per_sec lands more than 25% below its committed value fails the gate —
# wide enough for box noise on a 3-sample smoke, tight enough to catch a
# real regression. Entries without per_sec (wall-clock trajectory records
# like regenerate/wall) are informational and skip the gate.
BENCHTMP=$(mktemp)
VISIONSIM_BENCH_SAMPLES=3 VISIONSIM_BENCH_JSON="$BENCHTMP" \
  cargo bench -p visionsim-bench --bench packet_path
VISIONSIM_BENCH_SAMPLES=3 VISIONSIM_BENCH_JSON="$BENCHTMP" \
  cargo bench -p visionsim-bench --bench fleet
grep -q '"packet_path/hops"' "$BENCHTMP" || { echo "bench smoke wrote no hops record" >&2; exit 1; }
grep -q '"fleet/sessions_per_sec"' "$BENCHTMP" || { echo "bench smoke wrote no fleet record" >&2; exit 1; }
python3 - "$BENCHTMP" BENCH.json <<'PY'
import json, sys
fresh = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
bad = []
for name, entry in sorted(committed.items()):
    if name not in fresh:
        continue  # committed baselines (e.g. *_prebatch) with no live run
    per_sec = entry.get("per_sec")
    if per_sec is None:
        continue  # wall-clock trajectory entries are not throughput-gated
    floor = per_sec * 0.75
    got = fresh[name]["per_sec"]
    status = "ok" if got >= floor else "REGRESSED"
    print(f"  {name}: {got/1e6:.1f}M vs committed {per_sec/1e6:.1f}M ({status})")
    if got < floor:
        bad.append(name)
if bad:
    sys.exit(f"bench regression gate: {', '.join(bad)} fell >25% below BENCH.json")
PY
rm -f "$BENCHTMP"

echo "== supervised regenerate: quarantine + resume smoke =="
ARTDIR=$(mktemp -d)
# An injected panic must quarantine one artifact, let the rest finish,
# and exit non-zero with a summary.
if VISIONSIM_ARTIFACT_DIR="$ARTDIR" VISIONSIM_FAIL_ARTIFACT=figure5 \
   ./target/release/regenerate 2024 > /dev/null; then
  echo "regenerate should exit non-zero when an artifact is quarantined" >&2
  exit 1
fi
test ! -f "$ARTDIR/figure5.txt" || { echo "quarantined artifact was written" >&2; exit 1; }
test -f "$ARTDIR/table1.txt" || { echo "surviving artifacts were not written" >&2; exit 1; }
test -f "$ARTDIR/manifest.json" || { echo "manifest missing after failure" >&2; exit 1; }
# --resume must complete only the missing artifact from the manifest.
VISIONSIM_ARTIFACT_DIR="$ARTDIR" ./target/release/regenerate 2024 --resume > /dev/null
test -f "$ARTDIR/figure5.txt" || { echo "resume did not regenerate the failed artifact" >&2; exit 1; }
rm -rf "$ARTDIR"

echo "== flight recorder smoke: trace + metrics sidecars and dump =="
TRACEDIR=$(mktemp -d)
# One fast artifact that drives real packets (Table 1 probes the network),
# with the recorder on: both sidecars must land next to the artifact.
VISIONSIM_ARTIFACT_DIR="$TRACEDIR" VISIONSIM_TRACE=1 VISIONSIM_METRICS=1 \
  ./target/release/regenerate 2024 --only table1 > /dev/null
test -f "$TRACEDIR/table1.metrics.json" || { echo "metrics sidecar missing" >&2; exit 1; }
test -f "$TRACEDIR/table1.trace.bin" || { echo "trace sidecar missing" >&2; exit 1; }
grep -q '"net/link_bytes_sent"' "$TRACEDIR/table1.metrics.json" \
  || { echo "metrics sidecar lacks the per-link byte counters" >&2; exit 1; }
# The dump must decode the image and show the datapath events.
./target/release/trace_dump "$TRACEDIR/table1.trace.bin" | grep -q 'packet_send' \
  || { echo "trace dump shows no packet_send events" >&2; exit 1; }
rm -rf "$TRACEDIR"

echo "== serve: live control plane + Prometheus scrape + trace tail =="
SERVEDIR=$(mktemp -d)
# Boot the service on auto-assigned ports at 50x speed with a wall-clock
# rail so a wedged run cannot hang CI; parse the ports from the banner.
./target/release/visionsim serve --speed 50 --pacing-ms 5 \
  --trace "$SERVEDIR/live.trace.bin" --run-secs 60 > "$SERVEDIR/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q '^serve control=' "$SERVEDIR/serve.log" 2>/dev/null && break
  sleep 0.1
done
CTL=$(sed -n 's/^serve control=\([^ ]*\).*/\1/p' "$SERVEDIR/serve.log")
METRICS=$(sed -n 's/^serve.*metrics=\([^ ]*\).*/\1/p' "$SERVEDIR/serve.log")
test -n "$CTL" && test -n "$METRICS" \
  || { echo "serve did not print its addresses" >&2; kill $SERVE_PID; exit 1; }
V=./target/release/visionsim
# Drive the wire protocol: join both presets, let sessions run, inject a
# fault, then leave one and snapshot. Replies are asserted to be "ok ...".
$V ctl "$CTL" join mixed 2 2024 300 | grep -q '^ok join 0' \
  || { echo "serve: join mixed failed" >&2; kill $SERVE_PID; exit 1; }
$V ctl "$CTL" join facetime 3 2024 300 | grep -q '^ok join 1' \
  || { echo "serve: join facetime failed" >&2; kill $SERVE_PID; exit 1; }
sleep 2
$V ctl "$CTL" fault 0 1 burst-loss | grep -q '^ok fault' \
  || { echo "serve: fault injection failed" >&2; kill $SERVE_PID; exit 1; }
$V ctl "$CTL" snapshot | grep -q '"sanitizer_violations":0' \
  || { echo "serve: snapshot reports sanitizer violations" >&2; kill $SERVE_PID; exit 1; }
# A misspelled command must come back as a protocol error, not a hang.
# `ctl` exits 1 on an `err` reply, which pipefail would surface even
# though grep matches — the `|| true` keeps only grep's verdict.
($V ctl "$CTL" jion mixed 2 1 5 2>/dev/null || true) | grep -q '^err ' \
  || { echo "serve: bad command did not yield err" >&2; kill $SERVE_PID; exit 1; }
# Prometheus: the scrape must parse as text exposition format and carry
# the Sim-class datapath series.
SCRAPE=$($V scrape "$METRICS")
echo "$SCRAPE" | grep -q '^# TYPE visionsim_net_link_bytes_sent counter' \
  || { echo "scrape lacks the link byte counter" >&2; kill $SERVE_PID; exit 1; }
echo "$SCRAPE" | python3 -c '
import re, sys
typed = set()
for line in sys.stdin:
    line = line.rstrip("\n")
    if not line:
        continue
    m = re.match(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$", line)
    if m:
        typed.add(m.group(1))
        continue
    m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9]+)$", line)
    if not m:
        sys.exit(f"unparseable exposition line: {line!r}")
    base = re.sub(r"_(bucket|sum|count)$", "", m.group(1))
    if m.group(1) not in typed and base not in typed:
        sys.exit(f"sample before its TYPE line: {line!r}")
print(f"  exposition ok: {len(typed)} metric families")
' || { kill $SERVE_PID; exit 1; }
# The live trace sidecar must be tailable while the service runs.
./target/release/trace_dump --follow --polls 2 --interval-ms 200 \
  "$SERVEDIR/live.trace.bin" | grep -q 'packet_send' \
  || { echo "trace_dump --follow shows no datapath events" >&2; kill $SERVE_PID; exit 1; }
# Graceful drain and shutdown; the process must exit on its own.
$V ctl "$CTL" quiesce | grep -q '^ok quiesce' \
  || { echo "serve: quiesce failed" >&2; kill $SERVE_PID; exit 1; }
$V ctl "$CTL" shutdown | grep -q '^ok shutdown' \
  || { echo "serve: shutdown failed" >&2; kill $SERVE_PID; exit 1; }
wait $SERVE_PID || { echo "serve exited non-zero" >&2; exit 1; }
rm -rf "$SERVEDIR"

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all green"
